//! Machine-level snapshot round-trip: pause a run at cycle granularity,
//! serialize, restore into a fresh machine, and require the resumed run to
//! be byte-identical — stats, trace events, output memory — to an
//! uninterrupted one, under both execution engines. Also pins the format
//! itself: serialize → deserialize → re-serialize is byte-identical, and
//! mismatched frames are rejected with typed errors.

use std::sync::Arc;

use isrf_core::config::{ConfigName, MachineConfig};
use isrf_core::snap::SnapError;
use isrf_core::stats::RunStats;
use isrf_core::Word;
use isrf_kernel::ir::{KernelBuilder, StreamKind};
use isrf_kernel::sched::{schedule, SchedParams};
use isrf_mem::AddrPattern;
use isrf_sim::machine::Machine;
use isrf_sim::program::StreamProgram;
use isrf_sim::ExecEngine;
use isrf_trace::{TraceEvent, Tracer};

const OUT_BASE: u32 = 8192;
const OUT_WORDS: u32 = 64;

/// The paper's table-lookup app, small enough to run in tests but long
/// enough (loads, kernel with an indexed stream, store) that a mid-run
/// pause lands inside interesting machine state.
fn build_point(engine: ExecEngine) -> (Machine, StreamProgram) {
    let cfg = MachineConfig::preset(ConfigName::Isrf4);
    let mut machine = Machine::new(cfg.clone()).unwrap();
    machine.set_engine(engine);

    let mut b = KernelBuilder::new("lookup");
    let s_in = b.stream("in", StreamKind::SeqIn);
    let s_lut = b.stream("LUT", StreamKind::IdxInRead);
    let s_out = b.stream("out", StreamKind::SeqOut);
    let a = b.seq_read(s_in);
    let v = b.idx_load(s_lut, a);
    let c = b.add(a, v);
    b.seq_write(s_out, c);
    let kernel = Arc::new(b.build().unwrap());
    let sched = schedule(&kernel, &SchedParams::from_machine(machine.config())).unwrap();

    let lut = machine.alloc_stream(1, 256 * 8);
    let input = machine.alloc_stream(1, OUT_WORDS);
    let output = machine.alloc_stream(1, OUT_WORDS);
    for i in 0..256u32 {
        for lane in 0..8 {
            machine.mem_mut().memory_mut().write(i * 8 + lane, 1000 + i);
        }
    }
    for i in 0..OUT_WORDS {
        machine.mem_mut().memory_mut().write(4096 + i, i % 256);
    }

    let mut p = StreamProgram::new();
    let l1 = p.load(AddrPattern::contiguous(0, 256 * 8), lut, false, &[]);
    let l2 = p.load(AddrPattern::contiguous(4096, OUT_WORDS), input, false, &[]);
    let k = p.kernel(
        Arc::clone(&kernel),
        sched,
        vec![input, lut, output],
        8,
        &[l1, l2],
    );
    p.store(
        output,
        AddrPattern::contiguous(OUT_BASE, OUT_WORDS),
        false,
        &[k],
    );
    (machine, p)
}

struct Observed {
    stats: RunStats,
    events: Vec<(u64, TraceEvent)>,
    output: Vec<Word>,
}

fn drain_events(m: &mut Machine) -> Vec<(u64, TraceEvent)> {
    m.take_tracer()
        .into_recorder()
        .expect("recording tracer")
        .ring()
        .iter()
        .cloned()
        .collect()
}

fn straight(engine: ExecEngine) -> Observed {
    let (mut m, p) = build_point(engine);
    m.set_tracer(Tracer::recording(1 << 20));
    let stats = m.run(&p);
    let events = drain_events(&mut m);
    let output = m.mem().memory().read_block(OUT_BASE, OUT_WORDS as usize);
    Observed {
        stats,
        events,
        output,
    }
}

/// Pause after `at` cycles, snapshot, restore into a fresh machine, and
/// run that to completion. Returns the stitched observation plus the
/// snapshot bytes.
fn paused(engine: ExecEngine, at: u64) -> (Observed, Vec<u8>) {
    let (mut m, p) = build_point(engine);
    m.set_tracer(Tracer::recording(1 << 20));
    assert!(
        m.run_for(&p, at).is_none(),
        "run completed before cycle {at}"
    );
    assert!(m.mid_run());
    let snapshot = m.save_state(&p);
    let mut events = drain_events(&mut m);

    let (mut r, p2) = build_point(engine);
    r.restore_state(&p2, &snapshot).unwrap();
    assert!(r.mid_run());
    r.set_tracer(Tracer::recording(1 << 20));
    let stats = r.run_for(&p2, u64::MAX).expect("resumed run completes");
    events.extend(drain_events(&mut r));
    let output = r.mem().memory().read_block(OUT_BASE, OUT_WORDS as usize);
    (
        Observed {
            stats,
            events,
            output,
        },
        snapshot,
    )
}

fn engines() -> [ExecEngine; 2] {
    [ExecEngine::Tape, ExecEngine::Interp]
}

#[test]
fn snapshot_resume_matches_uninterrupted_run() {
    for engine in engines() {
        let base = straight(engine);
        let total = base.stats.cycles;
        assert!(total > 16, "test program too short to pause meaningfully");
        for at in [1, total / 3, total / 2, total - 1] {
            let (resumed, _) = paused(engine, at);
            assert_eq!(
                resumed.stats, base.stats,
                "stats diverge (pause at {at}, {engine:?})"
            );
            assert_eq!(
                resumed.events, base.events,
                "trace diverges (pause at {at}, {engine:?})"
            );
            assert_eq!(
                resumed.output, base.output,
                "output memory diverges (pause at {at}, {engine:?})"
            );
        }
    }
}

#[test]
fn run_for_with_enough_budget_completes() {
    let (mut m, p) = build_point(ExecEngine::Tape);
    let stats = m.run_for(&p, u64::MAX).expect("completes");
    assert!(!m.mid_run());
    assert_eq!(stats, straight(ExecEngine::Tape).stats);
}

#[test]
fn reserialized_snapshot_is_byte_identical() {
    for engine in engines() {
        let (_, snapshot) = paused(engine, 20);
        let (mut r, p) = build_point(engine);
        r.restore_state(&p, &snapshot).unwrap();
        assert_eq!(r.save_state(&p), snapshot);
    }
}

#[test]
fn snapshots_of_identical_state_are_byte_identical() {
    let (mut a, pa) = build_point(ExecEngine::Tape);
    let (mut b, pb) = build_point(ExecEngine::Tape);
    assert!(a.run_for(&pa, 33).is_none());
    assert!(b.run_for(&pb, 33).is_none());
    assert_eq!(a.save_state(&pa), b.save_state(&pb));
}

#[test]
fn diff_localizes_a_perturbed_bank_word() {
    let (mut a, pa) = build_point(ExecEngine::Tape);
    assert!(a.run_for(&pa, 40).is_none());
    let clean = a.save_state(&pa);
    let w = a.srf().read(3, 7);
    a.srf_mut().write(3, 7, w ^ 0x1);
    let dirty = a.save_state(&pa);
    let diffs = isrf_sim::diff_snapshots(&clean, &dirty).unwrap();
    assert_eq!(diffs.len(), 1);
    assert_eq!(diffs[0].path, "srf");
}

#[test]
fn restore_rejects_wrong_program_and_config() {
    let (mut m, p) = build_point(ExecEngine::Tape);
    assert!(m.run_for(&p, 20).is_none());
    let snapshot = m.save_state(&p);

    // Same machine, structurally different program.
    let (mut other, _) = build_point(ExecEngine::Tape);
    let mut p2 = StreamProgram::new();
    let dst = other.alloc_stream(1, 8);
    p2.load(AddrPattern::contiguous(0, 8), dst, false, &[]);
    assert!(matches!(
        other.restore_state(&p2, &snapshot),
        Err(SnapError::Mismatch(_))
    ));

    // Different machine configuration.
    let mut base_m = Machine::new(MachineConfig::preset(ConfigName::Base)).unwrap();
    assert!(matches!(
        base_m.restore_state(&p, &snapshot),
        Err(SnapError::Mismatch(_))
    ));
}

#[test]
fn restore_rejects_unknown_version_and_corruption() {
    let (mut m, p) = build_point(ExecEngine::Tape);
    assert!(m.run_for(&p, 20).is_none());
    let snapshot = m.save_state(&p);

    let mut wrong_version = snapshot.clone();
    wrong_version[8..12].copy_from_slice(&9u32.to_le_bytes());
    let err = m.restore_state(&p, &wrong_version).unwrap_err();
    assert!(matches!(
        err,
        SnapError::UnsupportedVersion(9) | SnapError::BadHash
    ));

    let mut flipped = snapshot.clone();
    flipped[40] ^= 0x40;
    assert_eq!(m.restore_state(&p, &flipped), Err(SnapError::BadHash));
}
