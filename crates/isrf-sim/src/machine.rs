//! The stream processor machine: lanes, SRF, memory system, sequencer.
//!
//! [`Machine`] owns the SRF storage, the memory system and the run-time
//! statistics, and executes [`StreamProgram`]s cycle by cycle:
//!
//! * memory transfers start as soon as their dependences complete and
//!   proceed concurrently (the latency-hiding overlap of stream machines);
//! * kernels run one at a time, in program order, on the single sequencer;
//! * the SRF port is shared: memory transfers claim it for one cycle per
//!   `N*m`-word block moved, pre-empting kernel stream grants.
//!
//! Cycle attribution follows Figure 12: steady-state loop-body cycles,
//! SRF stalls, memory stalls (cycles where the sequencer is idle waiting
//! for transfers), and kernel overheads (dispatch, software-pipeline
//! fill/drain, output flush, and everything else).

use std::collections::BTreeMap;
use std::sync::Arc;

use isrf_core::config::{ConfigError, MachineConfig};
use isrf_core::snap::{self, Dec, Enc, SnapError};
use isrf_core::stats::{MemTraffic, RunStats};
use isrf_core::Word;
use isrf_kernel::ir::Kernel;
use isrf_kernel::sched::Schedule;
use isrf_mem::{MemorySystem, TransferId};
use isrf_trace::{CycleAttr, TraceEvent, Tracer};

use crate::exec::{ExecEngine, ExecScratch, KernelRun, Phase};
use crate::tape::{cached_tape, CompiledTape};

/// A live memory transfer issued by [`Machine::run`]: the program op it
/// completes and, for loads, the destination stream and the data to land
/// in the SRF at completion. Stored in a slab indexed by the transfer's
/// slab slot, so completions resolve without scanning.
#[derive(Debug)]
struct PendingTransfer {
    op: usize,
    fill: Option<(StreamBinding, Vec<Word>)>,
}

/// Sequencer loop state of an in-flight program run, parked on the machine
/// between [`Machine::run_for`] slices. Structures derivable from the
/// program alone (dependents lists, the kernel index list, the port block
/// size) are rebuilt on every slice instead of being stored.
#[derive(Debug)]
struct RunState {
    /// Cumulative stats at run start (the final delta subtracts these).
    start_stats: RunStats,
    /// Memory traffic at run start.
    mem_start: MemTraffic,
    done: Vec<bool>,
    pending_deps: Vec<u32>,
    /// Memory ops whose dependences are complete, not yet issued.
    ready_mem: Vec<usize>,
    /// Cursor into the program-order kernel list.
    next_kernel: usize,
    /// The dispatched kernel, if any: `(program op index, run)`.
    kernel_run: Option<(usize, KernelRun)>,
    kernel_dispatch_left: u32,
    completed: usize,
    live_transfers: usize,
}

use crate::program::{ProgOp, StreamProgram};
use crate::srf::{Srf, SrfRange};
use crate::stream::StreamBinding;
use crate::verify::{ProgramVerifier, VerifyEnv, VerifyError, VerifyPolicy};

/// A complete simulated stream processor.
#[derive(Debug)]
pub struct Machine {
    cfg: MachineConfig,
    srf: Srf,
    mem: MemorySystem,
    /// Persistent cluster-local scratchpads, `scratch[lane][addr]`.
    scratch: Vec<Vec<Word>>,
    now: u64,
    stats: RunStats,
    /// Fractional SRF-port debt of memory transfers, in words.
    mem_port_words: f64,
    tracer: Tracer,
    /// Reusable kernel-execution buffers, shared across invocations.
    exec_scratch: ExecScratch,
    /// Live transfers, indexed by slab slot (mirrors the memory system's
    /// slot allocation).
    pending: Vec<Option<PendingTransfer>>,
    /// Reusable staging buffer for store/scatter source data.
    store_buf: Vec<Word>,
    /// Fast-forward across cycles where every sequencer is stalled on
    /// memory (on by default; identical observable behavior either way).
    quiesce_skip: bool,
    /// Static verifier consulted before simulation, when installed.
    verifier: Option<Arc<dyn ProgramVerifier>>,
    /// When the installed verifier runs automatically.
    verify_policy: VerifyPolicy,
    /// Per-bank word intervals known to hold data (sorted, disjoint):
    /// direct `write_stream` setup plus the outputs of completed runs.
    filled: Vec<(u32, u32)>,
    /// Kernel execution engine installed on every dispatched run.
    engine: ExecEngine,
    /// Loop state of a program paused mid-run by [`Machine::run_for`].
    active: Option<RunState>,
    /// Per-machine tape memo keyed by `(kernel, schedule)` Arc identity,
    /// skipping the content-hash lookup on repeat dispatches. The Arcs
    /// are pinned in the entry so pointer keys stay valid.
    #[allow(clippy::type_complexity)]
    tape_memo: BTreeMap<(usize, usize), (Arc<Kernel>, Arc<Schedule>, Arc<CompiledTape>)>,
}

impl Machine {
    /// Build a machine.
    ///
    /// # Errors
    ///
    /// Returns the configuration's validation error, if any.
    pub fn new(cfg: MachineConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        Ok(Machine {
            srf: Srf::new(&cfg),
            mem: MemorySystem::new(&cfg),
            scratch: vec![vec![0; cfg.cluster.scratchpad_words.max(1)]; cfg.lanes],
            now: 0,
            stats: RunStats::default(),
            mem_port_words: 0.0,
            tracer: Tracer::Null,
            exec_scratch: ExecScratch::default(),
            pending: Vec::new(),
            store_buf: Vec::new(),
            quiesce_skip: true,
            verifier: None,
            verify_policy: VerifyPolicy::default(),
            filled: Vec::new(),
            engine: ExecEngine::default(),
            active: None,
            tape_memo: BTreeMap::new(),
            cfg,
        })
    }

    /// Select the kernel execution engine for subsequent dispatches.
    ///
    /// Both engines produce byte-identical stats and traces; the tape
    /// engine (the default) is simply faster. The interpreter remains
    /// available for differential testing and triage.
    pub fn set_engine(&mut self, engine: ExecEngine) {
        self.engine = engine;
    }

    /// The kernel execution engine installed on subsequent dispatches.
    pub fn engine(&self) -> ExecEngine {
        self.engine
    }

    /// The compiled tape for `(kernel, sched)`, via the per-machine
    /// identity memo backed by the process-global content-hash cache.
    fn tape_for(&mut self, kernel: &Arc<Kernel>, sched: &Arc<Schedule>) -> Arc<CompiledTape> {
        let key = (Arc::as_ptr(kernel) as usize, Arc::as_ptr(sched) as usize);
        if let Some((_, _, tape)) = self.tape_memo.get(&key) {
            return Arc::clone(tape);
        }
        let tape = cached_tape(kernel, sched, self.cfg.lanes);
        self.tape_memo.insert(
            key,
            (Arc::clone(kernel), Arc::clone(sched), Arc::clone(&tape)),
        );
        tape
    }

    /// Enable or disable the quiescence fast-forward (skipping runs of
    /// cycles where the sequencer is idle and every live transfer is just
    /// waiting out its access latency). On by default; disabling it only
    /// slows simulation — cycle counts, stats and traces are identical.
    pub fn set_quiescence_skip(&mut self, on: bool) {
        self.quiesce_skip = on;
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// The SRF (for allocating ranges and laying out data).
    pub fn srf(&self) -> &Srf {
        &self.srf
    }

    /// Mutable SRF access.
    pub fn srf_mut(&mut self) -> &mut Srf {
        &mut self.srf
    }

    /// The memory system (for laying out benchmark data).
    pub fn mem(&self) -> &MemorySystem {
        &self.mem
    }

    /// Mutable memory-system access.
    pub fn mem_mut(&mut self) -> &mut MemorySystem {
        &mut self.mem
    }

    /// Current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The persistent per-lane scratchpads.
    pub fn scratch(&self) -> &[Vec<Word>] {
        &self.scratch
    }

    /// Install a tracer and return the previous one. Pass
    /// [`Tracer::recording`] to capture cycle-attributed events from every
    /// subsequent [`Machine::run`]; pass [`Tracer::Null`] (the default) to
    /// turn instrumentation back into a no-op.
    pub fn set_tracer(&mut self, tracer: Tracer) -> Tracer {
        std::mem::replace(&mut self.tracer, tracer)
    }

    /// The currently installed tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Remove the installed tracer, leaving [`Tracer::Null`] behind.
    pub fn take_tracer(&mut self) -> Tracer {
        std::mem::take(&mut self.tracer)
    }

    /// Statistics accumulated across all [`Machine::run`] calls.
    pub fn stats(&self) -> RunStats {
        self.stats
    }

    /// Reset statistics (keeps SRF and memory contents).
    pub fn reset_stats(&mut self) {
        self.stats = RunStats::default();
    }

    /// Convenience: allocate an SRF range sized for `records` records of
    /// `record_words` and return the binding covering it.
    pub fn alloc_stream(&mut self, record_words: u32, records: u32) -> StreamBinding {
        let lanes = self.cfg.lanes as u32;
        let per_bank = records.div_ceil(lanes) * record_words;
        let range = self.srf.alloc(per_bank);
        StreamBinding::whole(range, record_words, records)
    }

    /// Release all SRF allocations. Also forgets which intervals held
    /// data: ranges handed out earlier must no longer be used, so nothing
    /// inside them counts as live for verification.
    pub fn free_srf(&mut self) {
        self.srf.free_all();
        self.filled.clear();
    }

    /// Install a static verifier (or remove one with `None`); returns the
    /// previous verifier. See [`VerifyPolicy`] for when it runs.
    pub fn set_verifier(
        &mut self,
        v: Option<Arc<dyn ProgramVerifier>>,
    ) -> Option<Arc<dyn ProgramVerifier>> {
        std::mem::replace(&mut self.verifier, v)
    }

    /// Set when the installed verifier runs automatically inside
    /// [`Machine::run`]; returns the previous policy. The default is
    /// [`VerifyPolicy::Debug`].
    pub fn set_verify_policy(&mut self, p: VerifyPolicy) -> VerifyPolicy {
        std::mem::replace(&mut self.verify_policy, p)
    }

    /// The machine-side facts handed to the verifier: allocator high-water
    /// mark and the per-bank intervals known to hold data.
    pub fn verify_env(&self) -> VerifyEnv {
        VerifyEnv {
            allocated_words_per_bank: self.srf.bank_words() - self.srf.free_words(),
            filled: self.filled.clone(),
        }
    }

    /// Run the installed verifier on `program` now, regardless of policy.
    ///
    /// # Errors
    ///
    /// Returns every diagnostic the verifier produced. `Ok` when no
    /// verifier is installed or the program is clean.
    pub fn verify_program(&self, program: &StreamProgram) -> Result<(), VerifyError> {
        let Some(v) = &self.verifier else {
            return Ok(());
        };
        let diagnostics = v.verify(&self.cfg, &self.verify_env(), program);
        if diagnostics.is_empty() {
            Ok(())
        } else {
            Err(VerifyError { diagnostics })
        }
    }

    /// Record that the per-bank interval `[lo, hi)` now holds data,
    /// keeping `filled` sorted and disjoint.
    fn add_fill(&mut self, lo: u32, hi: u32) {
        if lo >= hi {
            return;
        }
        self.filled.push((lo, hi));
        self.filled.sort_unstable();
        let mut merged: Vec<(u32, u32)> = Vec::with_capacity(self.filled.len());
        for &(s, e) in &self.filled {
            match merged.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => merged.push((s, e)),
            }
        }
        self.filled = merged;
    }

    /// Record the SRF intervals a completed `program` wrote: load/gather
    /// destinations and every output binding of each kernel.
    fn note_program_fills(&mut self, program: &StreamProgram) {
        use isrf_kernel::ir::StreamKind;
        let mut ranges: Vec<crate::srf::SrfRange> = Vec::new();
        for node in &program.nodes {
            match &node.op {
                ProgOp::Load { dst, .. } | ProgOp::GatherDyn { dst, .. } => {
                    ranges.push(dst.range);
                }
                ProgOp::Kernel {
                    kernel, bindings, ..
                } => {
                    for (decl, b) in kernel.streams.iter().zip(bindings) {
                        if matches!(
                            decl.kind,
                            StreamKind::SeqOut | StreamKind::CondOut | StreamKind::IdxInWrite
                        ) {
                            ranges.push(b.range);
                        }
                    }
                }
                ProgOp::Store { .. } | ProgOp::ScatterDyn { .. } => {}
            }
        }
        for r in ranges {
            self.add_fill(r.base, r.base + r.words_per_bank);
        }
    }

    /// Read a stream's content out of the SRF (for checking results).
    pub fn read_stream(&self, b: &StreamBinding) -> Vec<Word> {
        let mut out = Vec::new();
        self.read_stream_into(b, &mut out);
        out
    }

    /// Read a stream's content out of the SRF into `out` (cleared first).
    /// Lets hot paths reuse one buffer instead of materializing a fresh
    /// `Vec` per access.
    pub fn read_stream_into(&self, b: &StreamBinding, out: &mut Vec<Word>) {
        out.clear();
        out.reserve(b.words() as usize);
        for k in 0..b.words() {
            out.push(
                self.srf
                    .read_stream_word(b.range, b.record_words, b.stream_word(k)),
            );
        }
    }

    /// Write data into a stream's SRF storage directly (test setup).
    pub fn write_stream(&mut self, b: &StreamBinding, data: &[Word]) {
        for (k, &v) in data.iter().enumerate() {
            self.srf
                .write_stream_word(b.range, b.record_words, b.stream_word(k as u32), v);
        }
        self.add_fill(b.range.base, b.range.base + b.range.words_per_bank);
    }

    /// Record a live transfer in the slot-indexed pending table.
    fn track_transfer(
        &mut self,
        id: TransferId,
        op: usize,
        fill: Option<(StreamBinding, Vec<Word>)>,
    ) {
        let slot = id.slot();
        if self.pending.len() <= slot {
            self.pending.resize_with(slot + 1, || None);
        }
        debug_assert!(self.pending[slot].is_none(), "slab slot reused while live");
        self.pending[slot] = Some(PendingTransfer { op, fill });
    }

    /// Gather-issue addressing: `base + index_stream[k]` for every element.
    fn collect_indices(&self, index_stream: &StreamBinding, base: u32) -> Vec<u32> {
        (0..index_stream.words())
            .map(|k| {
                base + self.srf.read_stream_word(
                    index_stream.range,
                    index_stream.record_words,
                    index_stream.stream_word(k),
                )
            })
            .collect()
    }

    /// Issue memory op `i`: hand the transfer to the memory system (access
    /// patterns are borrowed from the program, store data staged through
    /// the reusable buffer) and record its pending completion.
    fn issue_mem_op(&mut self, program: &StreamProgram, i: usize) {
        let (id, words, write, cacheable) = match &program.nodes[i].op {
            ProgOp::Load {
                pattern,
                dst,
                cacheable,
            } => {
                let (id, data) = self.mem.start_read(pattern, *cacheable);
                let words = data.len() as u32;
                self.track_transfer(id, i, Some((*dst, data)));
                (id, words, false, *cacheable)
            }
            ProgOp::Store {
                src,
                pattern,
                cacheable,
            } => {
                let mut buf = std::mem::take(&mut self.store_buf);
                self.read_stream_into(src, &mut buf);
                let words = buf.len() as u32;
                let id = self.mem.start_write(pattern, &buf, *cacheable);
                self.store_buf = buf;
                self.track_transfer(id, i, None);
                (id, words, true, *cacheable)
            }
            ProgOp::GatherDyn {
                index_stream,
                base,
                dst,
                cacheable,
            } => {
                let addrs = self.collect_indices(index_stream, *base);
                let (id, data) = self.mem.start_gather(addrs, *cacheable);
                let words = data.len() as u32;
                self.track_transfer(id, i, Some((*dst, data)));
                (id, words, false, *cacheable)
            }
            ProgOp::ScatterDyn {
                src,
                index_stream,
                base,
                cacheable,
            } => {
                let addrs = self.collect_indices(index_stream, *base);
                let mut buf = std::mem::take(&mut self.store_buf);
                self.read_stream_into(src, &mut buf);
                let words = buf.len() as u32;
                let id = self.mem.start_scatter(addrs, &buf, *cacheable);
                self.store_buf = buf;
                self.track_transfer(id, i, None);
                (id, words, true, *cacheable)
            }
            ProgOp::Kernel { .. } => unreachable!("kernels dispatch on the sequencer"),
        };
        if self.tracer.enabled() {
            self.tracer.emit(
                self.now,
                TraceEvent::TransferStart {
                    op: i as u32,
                    id: id.raw(),
                    words,
                    write,
                    cacheable,
                },
            );
        }
    }

    /// Execute `program` to completion; returns the stats for this run.
    ///
    /// When a verifier is installed and the policy is active,
    /// verification failures panic with the full diagnostic list — use
    /// [`Machine::run_checked`] to get them as a typed error instead.
    ///
    /// # Panics
    ///
    /// Panics if the program deadlocks (circular dependences) — programs
    /// built with [`StreamProgram`]'s checked constructors cannot — or
    /// fails verification.
    pub fn run(&mut self, program: &StreamProgram) -> RunStats {
        self.run_checked(program).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Like [`Machine::run`], but verification failures come back as a
    /// typed [`VerifyError`] instead of a panic. The verifier runs once,
    /// before the first simulated cycle (per [`VerifyPolicy`]); simulation
    /// itself is unchanged.
    ///
    /// # Errors
    ///
    /// The verifier's diagnostics, when the policy is active and the
    /// program is not clean.
    pub fn run_checked(&mut self, program: &StreamProgram) -> Result<RunStats, VerifyError> {
        if self.active.is_none() && self.verifier.is_some() && self.verify_policy.active() {
            self.verify_program(program)?;
        }
        let stats = self
            .run_budget(program, u64::MAX)
            .expect("unbounded run completes");
        self.note_program_fills(program);
        Ok(stats)
    }

    /// Run `program` for at most `max_cycles` machine cycles, pausing the
    /// sequencer in place when the budget runs out.
    ///
    /// Returns `Some(stats)` when the program completed within the budget
    /// (the run's stats delta, exactly as [`Machine::run`] would have
    /// returned), or `None` when it paused; call `run_for` (or
    /// [`Machine::run`]) again **with the same program** to continue. A
    /// paused-and-resumed run is byte-identical — stats, traces, memory —
    /// to an uninterrupted one. Snapshot the paused machine with
    /// [`Machine::save_state`].
    ///
    /// # Panics
    ///
    /// As [`Machine::run`]: verification failures (checked only when
    /// starting fresh, not when resuming) and deadlock panic.
    pub fn run_for(&mut self, program: &StreamProgram, max_cycles: u64) -> Option<RunStats> {
        if self.active.is_none() && self.verifier.is_some() && self.verify_policy.active() {
            self.verify_program(program)
                .unwrap_or_else(|e| panic!("{e}"));
        }
        let stats = self.run_budget(program, max_cycles);
        if stats.is_some() {
            self.note_program_fills(program);
        }
        stats
    }

    /// True while a [`Machine::run_for`] slice has left a program paused
    /// mid-run on this machine.
    pub fn mid_run(&self) -> bool {
        self.active.is_some()
    }

    /// Run `program` in slices of `chunk` cycles while `keep_going`
    /// approves, pausing in place the first time it declines.
    ///
    /// The job-facing run API: a long-running service executes each job in
    /// bounded slices and polls a cancellation/drain flag between them, so
    /// a pause lands on an exact cycle boundary and the paused machine can
    /// be snapshotted with [`Machine::save_state`] (or resumed later by
    /// calling `run_while` / [`Machine::run_for`] again with the same
    /// program). Returns `Some(stats)` when the program completed, `None`
    /// when paused. `keep_going` is consulted before every slice,
    /// including the first — so an already-cancelled job never simulates a
    /// cycle — and a paused-and-resumed run remains byte-identical to an
    /// uninterrupted one.
    ///
    /// # Panics
    ///
    /// As [`Machine::run_for`]; additionally if `chunk` is zero.
    pub fn run_while(
        &mut self,
        program: &StreamProgram,
        chunk: u64,
        mut keep_going: impl FnMut(&Machine) -> bool,
    ) -> Option<RunStats> {
        assert!(chunk > 0, "run_while needs a nonzero slice");
        loop {
            if !keep_going(self) {
                return None;
            }
            if let Some(stats) = self.run_for(program, chunk) {
                return Some(stats);
            }
        }
    }

    /// Serialize the machine's complete dynamic architectural state —
    /// including a program paused by [`Machine::run_for`] — into the
    /// versioned, content-hashed snapshot frame (DESIGN.md §12).
    ///
    /// The snapshot captures everything the simulation reads: cycle
    /// counter, statistics, SRF banks, lane scratchpads, the memory system
    /// (contents, cache arrays, in-flight transfers), the pending-transfer
    /// slab, and the paused sequencer loop (stream buffers, address FIFOs,
    /// kernel cursors, iteration contexts). Derived caches (compiled
    /// tapes, tracers, verifiers) are not stored; they are reconstructed
    /// deterministically on restore. `program` must be the program the
    /// paused run executes; restoring requires the same program and
    /// machine configuration (validated by fingerprint).
    ///
    /// Two snapshots of identical architectural state are byte-identical,
    /// and `snapshot → restore → run` matches an uninterrupted run in
    /// stats, traces, and memory.
    pub fn save_state(&self, program: &StreamProgram) -> Vec<u8> {
        let mut meta = Enc::new();
        meta.u64(snap::fnv1a(format!("{:?}", self.cfg).as_bytes()));
        meta.u64(snap::fnv1a(format!("{program:?}").as_bytes()));
        meta.u8(match self.engine {
            ExecEngine::Tape => 0,
            ExecEngine::Interp => 1,
        });
        meta.bool(self.quiesce_skip);
        meta.u64(self.now);
        meta.f64(self.mem_port_words);
        self.stats.encode_state(&mut meta);

        let mut scratch = Enc::new();
        scratch.usize(self.scratch.len());
        for lane in &self.scratch {
            scratch.usize(lane.len());
            for &w in lane {
                scratch.u32(w);
            }
        }

        let mut filled = Enc::new();
        filled.usize(self.filled.len());
        for &(lo, hi) in &self.filled {
            filled.u32(lo);
            filled.u32(hi);
        }

        let mut pending = Enc::new();
        pending.usize(self.pending.len());
        for slot in &self.pending {
            match slot {
                None => pending.bool(false),
                Some(pt) => {
                    pending.bool(true);
                    pending.usize(pt.op);
                    match &pt.fill {
                        None => pending.bool(false),
                        Some((b, data)) => {
                            pending.bool(true);
                            encode_binding(b, &mut pending);
                            pending.usize(data.len());
                            for &w in data {
                                pending.u32(w);
                            }
                        }
                    }
                }
            }
        }

        let mut srf = Enc::new();
        self.srf.encode_state(&mut srf);

        let mut run = Enc::new();
        let mut kctx = Enc::new();
        match &self.active {
            None => run.bool(false),
            Some(rs) => {
                run.bool(true);
                rs.start_stats.encode_state(&mut run);
                rs.mem_start.encode_state(&mut run);
                run.usize(rs.done.len());
                for &d in &rs.done {
                    run.bool(d);
                }
                for &p in &rs.pending_deps {
                    run.u32(p);
                }
                run.usize(rs.ready_mem.len());
                for &i in &rs.ready_mem {
                    run.usize(i);
                }
                run.usize(rs.next_kernel);
                run.u32(rs.kernel_dispatch_left);
                run.usize(rs.completed);
                run.usize(rs.live_transfers);
                match &rs.kernel_run {
                    None => run.bool(false),
                    Some((ki, kr)) => {
                        run.bool(true);
                        run.usize(*ki);
                        kr.encode_state(&mut run);
                        // Engine-specific iteration contexts live in their
                        // own section so cross-engine state comparison can
                        // skip exactly the representation-dependent part.
                        kr.encode_ctx(&mut kctx);
                    }
                }
            }
        }

        let mut payload = Enc::new();
        snap::write_sections(
            &mut payload,
            &[
                ("meta", meta.into_bytes()),
                ("scratch", scratch.into_bytes()),
                ("filled", filled.into_bytes()),
                ("pending", pending.into_bytes()),
                ("srf", srf.into_bytes()),
                ("mem", self.mem.encode_state()),
                ("run", run.into_bytes()),
                ("kctx", kctx.into_bytes()),
            ],
        );
        snap::frame(&payload.into_bytes())
    }

    /// Restore the machine to a snapshot taken by [`Machine::save_state`].
    ///
    /// The machine must be built from the same configuration and `program`
    /// must be (structurally) the same program as at capture — both are
    /// validated by fingerprint before anything is overwritten. Tracer,
    /// verifier, and engine-selection caches are left untouched, so a
    /// restored machine can trace or verify independently of the one that
    /// captured the snapshot.
    ///
    /// # Errors
    ///
    /// Any [`SnapError`]: frame corruption, version mismatch, or a
    /// structurally valid snapshot that does not fit this machine or
    /// program. On error after the fingerprint checks the machine state is
    /// unspecified; restore again (or rebuild the machine) before use.
    pub fn restore_state(
        &mut self,
        program: &StreamProgram,
        bytes: &[u8],
    ) -> Result<(), SnapError> {
        let payload = snap::unframe(bytes)?;
        let sections = snap::read_sections(payload)?;
        let get = |name: &str| -> Result<&[u8], SnapError> {
            sections
                .iter()
                .find(|s| s.name == name)
                .map(|s| s.bytes.as_slice())
                .ok_or_else(|| SnapError::Mismatch(format!("snapshot lacks section \"{name}\"")))
        };

        let mut meta = Dec::new(get("meta")?);
        let cfg_fp = meta.u64()?;
        if cfg_fp != snap::fnv1a(format!("{:?}", self.cfg).as_bytes()) {
            return Err(SnapError::Mismatch(
                "snapshot was taken on a different machine configuration".into(),
            ));
        }
        let prog_fp = meta.u64()?;
        if prog_fp != snap::fnv1a(format!("{program:?}").as_bytes()) {
            return Err(SnapError::Mismatch(
                "snapshot was taken running a different program".into(),
            ));
        }
        let engine = match meta.u8()? {
            0 => ExecEngine::Tape,
            1 => ExecEngine::Interp,
            t => return Err(SnapError::Mismatch(format!("unknown engine tag {t}"))),
        };
        self.engine = engine;
        self.quiesce_skip = meta.bool()?;
        self.now = meta.u64()?;
        self.mem_port_words = meta.f64()?;
        self.stats = RunStats::decode_state(&mut meta)?;
        meta.finish()?;

        let mut sc = Dec::new(get("scratch")?);
        let lanes = sc.usize()?;
        if lanes != self.scratch.len() {
            return Err(SnapError::Mismatch(format!(
                "scratchpad lane count {lanes} != {}",
                self.scratch.len()
            )));
        }
        for lane in &mut self.scratch {
            let len = sc.usize()?;
            if len != lane.len() {
                return Err(SnapError::Mismatch(format!(
                    "scratchpad holds {len} words, expected {}",
                    lane.len()
                )));
            }
            for w in lane.iter_mut() {
                *w = sc.u32()?;
            }
        }
        sc.finish()?;

        let mut fl = Dec::new(get("filled")?);
        let n_filled = fl.usize()?;
        self.filled.clear();
        for _ in 0..n_filled {
            let lo = fl.u32()?;
            let hi = fl.u32()?;
            self.filled.push((lo, hi));
        }
        fl.finish()?;

        let mut pd = Dec::new(get("pending")?);
        let slots = pd.usize()?;
        self.pending.clear();
        for _ in 0..slots {
            if !pd.bool()? {
                self.pending.push(None);
                continue;
            }
            let op = pd.usize()?;
            let fill = if pd.bool()? {
                let b = decode_binding(&mut pd)?;
                let len = pd.usize()?;
                let mut data = Vec::with_capacity(len);
                for _ in 0..len {
                    data.push(pd.u32()?);
                }
                Some((b, data))
            } else {
                None
            };
            self.pending.push(Some(PendingTransfer { op, fill }));
        }
        pd.finish()?;

        let mut sr = Dec::new(get("srf")?);
        self.srf.decode_state(&mut sr)?;
        sr.finish()?;

        self.mem.decode_state(get("mem")?)?;

        let mut rn = Dec::new(get("run")?);
        self.active = if rn.bool()? {
            let start_stats = RunStats::decode_state(&mut rn)?;
            let mem_start = MemTraffic::decode_state(&mut rn)?;
            let n_ops = rn.usize()?;
            if n_ops != program.len() {
                return Err(SnapError::Mismatch(format!(
                    "paused run covers {n_ops} ops, program has {}",
                    program.len()
                )));
            }
            let mut done = Vec::with_capacity(n_ops);
            for _ in 0..n_ops {
                done.push(rn.bool()?);
            }
            let mut pending_deps = Vec::with_capacity(n_ops);
            for _ in 0..n_ops {
                pending_deps.push(rn.u32()?);
            }
            let n_ready = rn.usize()?;
            let mut ready_mem = Vec::with_capacity(n_ready);
            for _ in 0..n_ready {
                ready_mem.push(rn.usize()?);
            }
            let next_kernel = rn.usize()?;
            let kernel_dispatch_left = rn.u32()?;
            let completed = rn.usize()?;
            let live_transfers = rn.usize()?;
            let kernel_run = if rn.bool()? {
                let ki = rn.usize()?;
                let Some(node) = program.nodes.get(ki) else {
                    return Err(SnapError::Mismatch(format!(
                        "paused kernel index {ki} out of program range"
                    )));
                };
                let ProgOp::Kernel {
                    kernel,
                    schedule,
                    bindings,
                    iters,
                } = &node.op
                else {
                    return Err(SnapError::Mismatch(format!(
                        "paused run points at op {ki}, which is not a kernel"
                    )));
                };
                let mut kr = KernelRun::new(
                    &self.cfg,
                    Arc::clone(kernel),
                    Arc::clone(schedule),
                    bindings,
                    *iters,
                );
                match engine {
                    ExecEngine::Tape => {
                        let tape = self.tape_for(kernel, schedule);
                        kr.set_tape(tape);
                    }
                    ExecEngine::Interp => kr.set_engine(ExecEngine::Interp),
                }
                kr.decode_state(&mut rn)?;
                let mut kc = Dec::new(get("kctx")?);
                kr.decode_ctx(&mut kc)?;
                kc.finish()?;
                Some((ki, kr))
            } else {
                None
            };
            Some(RunState {
                start_stats,
                mem_start,
                done,
                pending_deps,
                ready_mem,
                next_kernel,
                kernel_run,
                kernel_dispatch_left,
                completed,
                live_transfers,
            })
        } else {
            None
        };
        rn.finish()?;
        Ok(())
    }

    fn run_budget(&mut self, program: &StreamProgram, budget: u64) -> Option<RunStats> {
        let n = program.len();
        // Program-derived structures, rebuilt on every slice (cheap, and
        // identical across pause/resume since the program is unchanged):
        // an op becomes ready the moment its last dependence completes —
        // the per-cycle path never rescans the program.
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut kernels: Vec<usize> = Vec::new();
        for (i, node) in program.nodes.iter().enumerate() {
            for d in &node.deps {
                dependents[d.0].push(i);
            }
            if matches!(node.op, ProgOp::Kernel { .. }) {
                kernels.push(i);
            }
        }
        let block = (self.cfg.lanes * self.cfg.srf.words_per_seq_access) as f64;
        let mut rs = self.active.take().unwrap_or_else(|| {
            let mut pending_deps: Vec<u32> = vec![0; n];
            for (i, node) in program.nodes.iter().enumerate() {
                pending_deps[i] = node.deps.len() as u32;
            }
            let ready_mem: Vec<usize> = (0..n)
                .filter(|&i| {
                    pending_deps[i] == 0 && !matches!(program.nodes[i].op, ProgOp::Kernel { .. })
                })
                .collect();
            RunState {
                start_stats: self.stats,
                mem_start: self.mem.traffic(),
                done: vec![false; n],
                pending_deps,
                ready_mem,
                next_kernel: 0, // kernels execute in program order
                kernel_run: None,
                kernel_dispatch_left: 0,
                completed: 0,
                live_transfers: 0,
            }
        });
        if rs.done.len() != n {
            panic!(
                "resumed with a different program ({n} ops, paused run has {})",
                rs.done.len()
            );
        }
        let mut used: u64 = 0;

        while rs.completed < n {
            if used >= budget {
                self.active = Some(rs);
                return None;
            }
            // Start ready memory ops (ascending op order, matching the
            // program scan this replaces).
            if !rs.ready_mem.is_empty() {
                rs.ready_mem.sort_unstable();
                for i in rs.ready_mem.drain(..) {
                    self.issue_mem_op(program, i);
                    rs.live_transfers += 1;
                }
            }
            // Dispatch the next kernel (in program order) when ready.
            while rs.next_kernel < kernels.len() && rs.done[kernels[rs.next_kernel]] {
                rs.next_kernel += 1;
            }
            if rs.kernel_run.is_none() && rs.next_kernel < kernels.len() {
                let ki = kernels[rs.next_kernel];
                if rs.pending_deps[ki] == 0 {
                    if let ProgOp::Kernel {
                        kernel,
                        schedule,
                        bindings,
                        iters,
                    } = &program.nodes[ki].op
                    {
                        if self.tracer.enabled() {
                            self.tracer.emit(
                                self.now,
                                TraceEvent::KernelStart {
                                    op: ki as u32,
                                    name: kernel.name.as_str().into(),
                                },
                            );
                        }
                        let mut run = KernelRun::new(
                            &self.cfg,
                            Arc::clone(kernel),
                            Arc::clone(schedule),
                            bindings,
                            *iters,
                        );
                        match self.engine {
                            ExecEngine::Tape => {
                                let tape = self.tape_for(kernel, schedule);
                                run.set_tape(tape);
                            }
                            ExecEngine::Interp => run.set_engine(ExecEngine::Interp),
                        }
                        rs.kernel_run = Some((ki, run));
                        rs.kernel_dispatch_left = self.cfg.kernel_dispatch_cycles;
                    }
                }
            }

            // Quiescence fast-forward: no kernel running or dispatchable,
            // nothing left to issue, and every live transfer has been
            // fully served — the machine would spend every cycle up to the
            // next completion in a pure memory stall, so take them all at
            // once. `advance_idle` replays the credit refill cycle by
            // cycle, so this is bit-identical to ticking; the port-debt
            // gate keeps any PortPreempted cycle on the slow path. The
            // budget clamp pauses mid-stall without observable difference:
            // the remaining stall cycles replay identically on resume.
            if self.quiesce_skip
                && rs.kernel_run.is_none()
                && rs.live_transfers > 0
                && self.mem.inflight_count() == 0
                && self.mem_port_words < block
            {
                if let Some(t) = self.mem.next_completion_time() {
                    let skip = t.saturating_sub(self.now + 1).min(budget - used - 1);
                    if skip > 0 {
                        if self.tracer.enabled() {
                            for c in 1..=skip {
                                self.tracer
                                    .emit(self.now + c, TraceEvent::Cycle(CycleAttr::MemStall));
                            }
                        }
                        self.mem.advance_idle(skip);
                        self.now += skip;
                        self.stats.breakdown.mem_stall += skip;
                        self.stats.cycles += skip;
                        used += skip;
                    }
                }
            }

            // ---- One machine cycle. ----
            self.now += 1;
            self.mem.tick_traced(&mut self.tracer);
            // Memory transfers consume the SRF port: one block grant per
            // N*m words moved.
            self.mem_port_words += self.mem.words_served_last_tick() as f64;
            let mem_claims_port = if self.mem_port_words >= block {
                self.mem_port_words -= block;
                if self.tracer.enabled() {
                    self.tracer.emit(self.now, TraceEvent::PortPreempted);
                }
                true
            } else {
                false
            };

            // Retire finished transfers in (completion cycle, issue id)
            // order, landing load data in the SRF.
            while let Some(id) = self.mem.pop_ready() {
                let Some(pt) = self.pending.get_mut(id.slot()).and_then(Option::take) else {
                    continue; // issued directly on the memory system, not ours
                };
                rs.live_transfers -= 1;
                if let Some((dst, data)) = pt.fill {
                    for (k, &v) in data.iter().enumerate() {
                        self.srf.write_stream_word(
                            dst.range,
                            dst.record_words,
                            dst.stream_word(k as u32),
                            v,
                        );
                    }
                }
                complete_op(
                    pt.op,
                    program,
                    &mut rs.done,
                    &mut rs.completed,
                    &mut rs.pending_deps,
                    &dependents,
                    &mut rs.ready_mem,
                );
                if self.tracer.enabled() {
                    self.tracer.emit(
                        self.now,
                        TraceEvent::TransferDone {
                            op: pt.op as u32,
                            id: id.raw(),
                        },
                    );
                }
            }

            // Advance the kernel (or attribute the idle cycle).
            if let Some((ki, run)) = &mut rs.kernel_run {
                if rs.kernel_dispatch_left > 0 {
                    rs.kernel_dispatch_left -= 1;
                    self.stats.breakdown.overhead += 1;
                    if self.tracer.enabled() {
                        self.tracer
                            .emit(self.now, TraceEvent::Cycle(CycleAttr::Dispatch));
                    }
                } else {
                    let phase = run.tick(
                        self.now,
                        &mut self.srf,
                        &mut self.scratch,
                        &mut self.exec_scratch,
                        mem_claims_port,
                        &mut self.stats.srf,
                        &mut self.tracer,
                    );
                    match phase {
                        Phase::Advanced | Phase::Stalled => {
                            self.stats.main_loop_cycles += 1;
                            if phase == Phase::Stalled {
                                self.stats.breakdown.srf_stall += 1;
                            }
                            // Loop-body vs fill/drain is settled at kernel end.
                            if self.tracer.enabled() {
                                let attr = if phase == Phase::Stalled {
                                    CycleAttr::SrfStall
                                } else {
                                    CycleAttr::Advance
                                };
                                self.tracer.emit(self.now, TraceEvent::Cycle(attr));
                            }
                        }
                        Phase::Flushing => {
                            self.stats.breakdown.overhead += 1;
                            if self.tracer.enabled() {
                                self.tracer
                                    .emit(self.now, TraceEvent::Cycle(CycleAttr::Flush));
                            }
                        }
                        Phase::Done => {
                            // Attribute advanced cycles: body = iters*II,
                            // the rest is software-pipeline fill/drain.
                            let body = run.body_cycles().min(run.advance_cycles);
                            self.stats.breakdown.kernel_loop += body;
                            self.stats.breakdown.overhead += run.advance_cycles - body;
                            let i = *ki;
                            if self.tracer.enabled() {
                                self.tracer.emit(
                                    self.now,
                                    TraceEvent::KernelEnd {
                                        op: i as u32,
                                        body_cycles: run.body_cycles(),
                                        advance_cycles: run.advance_cycles,
                                        stall_cycles: run.stall_cycles,
                                        flush_cycles: run.flush_cycles,
                                    },
                                );
                                self.tracer
                                    .emit(self.now, TraceEvent::Cycle(CycleAttr::KernelFinish));
                            }
                            complete_op(
                                i,
                                program,
                                &mut rs.done,
                                &mut rs.completed,
                                &mut rs.pending_deps,
                                &dependents,
                                &mut rs.ready_mem,
                            );
                            rs.kernel_run = None;
                            self.stats.breakdown.overhead += 1; // this cycle
                        }
                    }
                }
            } else if rs.live_transfers > 0 {
                self.stats.breakdown.mem_stall += 1;
                if self.tracer.enabled() {
                    self.tracer
                        .emit(self.now, TraceEvent::Cycle(CycleAttr::MemStall));
                }
            } else if rs.completed < n {
                // Waiting on nothing measurable (e.g. dependence chains of
                // zero-length ops); attribute to overhead.
                self.stats.breakdown.overhead += 1;
                if self.tracer.enabled() {
                    self.tracer
                        .emit(self.now, TraceEvent::Cycle(CycleAttr::Idle));
                }
            }
            self.stats.cycles += 1;
            used += 1;

            assert!(
                self.stats.cycles - (rs.start_stats.cycles) < 1_000_000_000,
                "program appears deadlocked"
            );
        }

        self.stats.mem = self.mem.traffic();
        let mut delta = self.stats;
        delta.cycles -= rs.start_stats.cycles;
        delta.main_loop_cycles -= rs.start_stats.main_loop_cycles;
        delta.breakdown.kernel_loop -= rs.start_stats.breakdown.kernel_loop;
        delta.breakdown.mem_stall -= rs.start_stats.breakdown.mem_stall;
        delta.breakdown.srf_stall -= rs.start_stats.breakdown.srf_stall;
        delta.breakdown.overhead -= rs.start_stats.breakdown.overhead;
        delta.srf.seq_words -= rs.start_stats.srf.seq_words;
        delta.srf.inlane_words -= rs.start_stats.srf.inlane_words;
        delta.srf.crosslane_words -= rs.start_stats.srf.crosslane_words;
        delta.mem.bytes_read -= rs.mem_start.bytes_read;
        delta.mem.bytes_written -= rs.mem_start.bytes_written;
        delta.mem.cache_hit_bytes -= rs.mem_start.cache_hit_bytes;
        Some(delta)
    }
}

/// Write a [`StreamBinding`] into a snapshot encoder (seven `u32` fields).
fn encode_binding(b: &StreamBinding, e: &mut Enc) {
    e.u32(b.range.base);
    e.u32(b.range.words_per_bank);
    e.u32(b.record_words);
    e.u32(b.records);
    e.u32(b.start_record);
    e.u32(b.run_records);
    e.u32(b.stride_records);
}

/// Read a [`StreamBinding`] written by [`encode_binding`].
fn decode_binding(d: &mut Dec) -> Result<StreamBinding, SnapError> {
    Ok(StreamBinding {
        range: SrfRange {
            base: d.u32()?,
            words_per_bank: d.u32()?,
        },
        record_words: d.u32()?,
        records: d.u32()?,
        start_record: d.u32()?,
        run_records: d.u32()?,
        stride_records: d.u32()?,
    })
}

/// Retire op `i`: mark it done and push any newly unblocked memory ops
/// onto the ready list (kernels wait for the sequencer's program-order
/// cursor instead).
#[allow(clippy::too_many_arguments)]
fn complete_op(
    i: usize,
    program: &StreamProgram,
    done: &mut [bool],
    completed: &mut usize,
    pending_deps: &mut [u32],
    dependents: &[Vec<usize>],
    ready_mem: &mut Vec<usize>,
) {
    done[i] = true;
    *completed += 1;
    for &j in &dependents[i] {
        pending_deps[j] -= 1;
        if pending_deps[j] == 0 && !matches!(program.nodes[j].op, ProgOp::Kernel { .. }) {
            ready_mem.push(j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgOpId;
    use isrf_core::config::ConfigName;
    use isrf_kernel::ir::{KernelBuilder, Operand, StreamKind};
    use isrf_kernel::sched::{schedule, SchedParams, Schedule};
    use isrf_kernel::Kernel;
    use isrf_mem::AddrPattern;

    fn machine(name: ConfigName) -> Machine {
        Machine::new(MachineConfig::preset(name)).unwrap()
    }

    fn sched_for(m: &Machine, k: &Kernel) -> Schedule {
        schedule(k, &SchedParams::from_machine(m.config())).unwrap()
    }

    /// out[i] = 2 * in[i], end to end through memory.
    #[test]
    fn sequential_copy_scale_kernel() {
        let mut m = machine(ConfigName::Base);
        let mut b = KernelBuilder::new("scale");
        let si = b.stream("in", StreamKind::SeqIn);
        let so = b.stream("out", StreamKind::SeqOut);
        let x = b.seq_read(si);
        let two = b.constant(2);
        let y = b.mul(x, two);
        b.seq_write(so, y);
        let k = Arc::new(b.build().unwrap());
        let s = sched_for(&m, &k);

        let n = 256u32;
        for i in 0..n {
            m.mem_mut().memory_mut().write(i, i + 1);
        }
        let inp = m.alloc_stream(1, n);
        let outp = m.alloc_stream(1, n);
        let mut p = StreamProgram::new();
        let l = p.load(AddrPattern::contiguous(0, n), inp, false, &[]);
        let kk = p.kernel(Arc::clone(&k), s, vec![inp, outp], (n / 8) as u64, &[l]);
        p.store(outp, AddrPattern::contiguous(10_000, n), false, &[kk]);
        let stats = m.run(&p);

        for i in 0..n {
            assert_eq!(
                m.mem().memory().read(10_000 + i),
                2 * (i + 1),
                "element {i}"
            );
        }
        assert!(stats.cycles > 0);
        assert_eq!(stats.mem.total(), (n as u64) * 8, "load + store traffic");
        assert!(stats.breakdown.kernel_loop >= (n as u64 / 8), "body cycles");
        assert!(
            stats.srf.seq_words >= 2 * n as u64,
            "both streams through SRF"
        );
    }

    /// Per-lane running sum via a loop-carried operand.
    #[test]
    fn loop_carried_accumulation() {
        let mut m = machine(ConfigName::Base);
        let mut b = KernelBuilder::new("prefix");
        let si = b.stream("in", StreamKind::SeqIn);
        let so = b.stream("out", StreamKind::SeqOut);
        let x = b.seq_read(si);
        // acc = acc(prev) + x  (op index 1)
        let acc = b.push(
            isrf_kernel::Opcode::Add,
            vec![
                Operand::from(x),
                Operand::carried(isrf_kernel::ValueId(1), 1, 0),
            ],
        );
        b.seq_write(so, acc);
        let k = Arc::new(b.build().unwrap());
        let s = sched_for(&m, &k);

        let n = 64u32;
        for i in 0..n {
            m.mem_mut().memory_mut().write(i, 1); // all ones
        }
        let inp = m.alloc_stream(1, n);
        let outp = m.alloc_stream(1, n);
        let mut p = StreamProgram::new();
        let l = p.load(AddrPattern::contiguous(0, n), inp, false, &[]);
        let kk = p.kernel(Arc::clone(&k), s, vec![inp, outp], (n / 8) as u64, &[l]);
        p.store(outp, AddrPattern::contiguous(1000, n), false, &[kk]);
        m.run(&p);
        // Record r = iteration r/8 of lane r%8; running count = r/8 + 1.
        for r in 0..n {
            assert_eq!(m.mem().memory().read(1000 + r), r / 8 + 1, "record {r}");
        }
    }

    /// Cross-lane indexed read: every cluster fetches its neighbor's data.
    #[test]
    fn crosslane_indexed_permutation() {
        let mut m = machine(ConfigName::Isrf4);
        let mut b = KernelBuilder::new("xl");
        let data = b.stream("data", StreamKind::IdxCrossRead);
        let so = b.stream("out", StreamKind::SeqOut);
        // record = iter * lanes + (lane + 1) % lanes
        let lane = b.lane_id();
        let one = b.constant(1);
        let lanes = b.lane_count();
        let iter = b.iter_id();
        let l1 = b.add(lane, one);
        let wrapped = b.rem(l1, lanes);
        let base = b.mul(iter, lanes);
        let rec = b.add(base, wrapped);
        let v = b.idx_load(data, rec);
        b.seq_write(so, v);
        let k = Arc::new(b.build().unwrap());
        let s = sched_for(&m, &k);

        let n = 64u32;
        let dstream = m.alloc_stream(1, n);
        let ostream = m.alloc_stream(1, n);
        let vals: Vec<u32> = (0..n).map(|i| 100 + i).collect();
        m.write_stream(&dstream, &vals);
        let mut p = StreamProgram::new();
        let kk = p.kernel(
            Arc::clone(&k),
            s,
            vec![dstream, ostream],
            (n / 8) as u64,
            &[],
        );
        p.store(ostream, AddrPattern::contiguous(5000, n), false, &[kk]);
        let stats = m.run(&p);
        assert!(stats.srf.crosslane_words >= n as u64);
        for i in 0..n {
            let lane = i % 8;
            let iter = i / 8;
            let expect = 100 + iter * 8 + (lane + 1) % 8;
            assert_eq!(m.mem().memory().read(5000 + i), expect, "record {i}");
        }
    }

    /// Indexed in-lane writes land at computed lane-local addresses.
    #[test]
    fn inlane_indexed_write_scatter() {
        let mut m = machine(ConfigName::Isrf4);
        let mut b = KernelBuilder::new("scatter");
        let dst = b.stream("dst", StreamKind::IdxInWrite);
        // Write value (lane*100 + iter) at lane-local word (7 - iter).
        let lane = b.lane_id();
        let iter = b.iter_id();
        let c100 = b.constant(100);
        let v0 = b.mul(lane, c100);
        let v = b.add(v0, iter);
        let seven = b.constant(7);
        let addr = b.sub(seven, iter);
        b.idx_write(dst, addr, v);
        let k = Arc::new(b.build().unwrap());
        let s = sched_for(&m, &k);

        let dstream = m.alloc_stream(1, 64);
        let mut p = StreamProgram::new();
        p.kernel(Arc::clone(&k), s, vec![dstream], 8, &[]);
        m.run(&p);
        for lane in 0..8usize {
            for iter in 0..8u32 {
                assert_eq!(
                    m.srf().read(lane, dstream.range.base + 7 - iter),
                    lane as u32 * 100 + iter
                );
            }
        }
    }

    /// Conditional output stream compacts selected elements.
    #[test]
    fn conditional_write_compacts() {
        let mut m = machine(ConfigName::Base);
        let mut b = KernelBuilder::new("compact");
        let si = b.stream("in", StreamKind::SeqIn);
        let so = b.stream("out", StreamKind::CondOut);
        let x = b.seq_read(si);
        let one = b.constant(1);
        let odd = b.and(x, one);
        b.cond_write(so, odd, x);
        let k = Arc::new(b.build().unwrap());
        let s = sched_for(&m, &k);

        let n = 64u32;
        for i in 0..n {
            m.mem_mut().memory_mut().write(i, i);
        }
        let inp = m.alloc_stream(1, n);
        let outp = m.alloc_stream(1, n / 2);
        let mut p = StreamProgram::new();
        let l = p.load(AddrPattern::contiguous(0, n), inp, false, &[]);
        let kk = p.kernel(Arc::clone(&k), s, vec![inp, outp], (n / 8) as u64, &[l]);
        p.store(outp, AddrPattern::contiguous(2000, n / 2), false, &[kk]);
        m.run(&p);
        // Each iteration processes records 8j..8j+8 = values 8j..8j+8; the
        // odd ones (4 per iteration) are appended in lane order.
        let got: Vec<u32> = (0..n / 2)
            .map(|i| m.mem().memory().read(2000 + i))
            .collect();
        let expect: Vec<u32> = (0..n).filter(|v| v % 2 == 1).collect();
        assert_eq!(got, expect);
    }

    /// Conditional input distributes elements to asserting lanes.
    #[test]
    fn conditional_read_distributes() {
        let mut m = machine(ConfigName::Base);
        let mut b = KernelBuilder::new("dist");
        let si = b.stream("in", StreamKind::CondIn);
        let so = b.stream("out", StreamKind::SeqOut);
        // Even lanes read; odd lanes get 0.
        let lane = b.lane_id();
        let one = b.constant(1);
        let lsb = b.and(lane, one);
        let zero = b.constant(0);
        let even = b.eq(lsb, zero);
        let v = b.cond_read(si, even);
        b.seq_write(so, v);
        let k = Arc::new(b.build().unwrap());
        let s = sched_for(&m, &k);

        let inp = m.alloc_stream(1, 32);
        let outp = m.alloc_stream(1, 64);
        let vals: Vec<u32> = (0..32).map(|i| 500 + i).collect();
        m.write_stream(&inp, &vals);
        let mut p = StreamProgram::new();
        let kk = p.kernel(Arc::clone(&k), s, vec![inp, outp], 8, &[]);
        p.store(outp, AddrPattern::contiguous(3000, 64), false, &[kk]);
        m.run(&p);
        // Iteration j: lanes 0,2,4,6 receive elements 4j..4j+4.
        for j in 0..8u32 {
            for (pos, lane) in [0u32, 2, 4, 6].iter().enumerate() {
                let rec = j * 8 + lane;
                assert_eq!(m.mem().memory().read(3000 + rec), 500 + 4 * j + pos as u32);
            }
            for lane in [1u32, 3, 5, 7] {
                assert_eq!(m.mem().memory().read(3000 + j * 8 + lane), 0);
            }
        }
    }

    /// Inter-cluster rotate permutes values across lanes.
    #[test]
    fn comm_rotate_permutes() {
        let mut m = machine(ConfigName::Base);
        let mut b = KernelBuilder::new("rot");
        let so = b.stream("out", StreamKind::SeqOut);
        let lane = b.lane_id();
        let c10 = b.constant(10);
        let v = b.mul(lane, c10);
        let r = b.comm_rotate(1, v);
        b.seq_write(so, r);
        let k = Arc::new(b.build().unwrap());
        let s = sched_for(&m, &k);
        let outp = m.alloc_stream(1, 8);
        let mut p = StreamProgram::new();
        p.kernel(Arc::clone(&k), s, vec![outp], 1, &[]);
        m.run(&p);
        let got = m.read_stream(&outp);
        // Lane l receives the value of lane (l+1) % 8.
        let expect: Vec<u32> = (0..8).map(|l| ((l + 1) % 8) * 10).collect();
        assert_eq!(got, expect);
    }

    /// Memory stalls appear when a kernel waits on a long load.
    #[test]
    fn memory_stall_attribution() {
        let mut m = machine(ConfigName::Base);
        let mut b = KernelBuilder::new("consume");
        let si = b.stream("in", StreamKind::SeqIn);
        let so = b.stream("out", StreamKind::SeqOut);
        let x = b.seq_read(si);
        b.seq_write(so, x);
        let k = Arc::new(b.build().unwrap());
        let s = sched_for(&m, &k);
        let n = 8192u32;
        let inp = m.alloc_stream(1, n);
        let outp = m.alloc_stream(1, n);
        let mut p = StreamProgram::new();
        let l = p.load(AddrPattern::contiguous(0, n), inp, false, &[]);
        let kk = p.kernel(Arc::clone(&k), s, vec![inp, outp], (n / 8) as u64, &[l]);
        let _ = kk;
        let stats = m.run(&p);
        // The load takes ~3600 cycles; the kernel only ~1000. Waiting for
        // the load dominates.
        assert!(
            stats.breakdown.mem_stall > stats.breakdown.kernel_loop,
            "{:?}",
            stats.breakdown
        );
    }

    /// Double buffering overlaps strip N's load with strip N-1's kernel.
    #[test]
    fn double_buffering_overlaps_memory_and_compute() {
        fn run(overlap: bool) -> u64 {
            let mut m = machine(ConfigName::Base);
            let mut b = KernelBuilder::new("work");
            let si = b.stream("in", StreamKind::SeqIn);
            let so = b.stream("out", StreamKind::SeqOut);
            let x = b.seq_read(si);
            // Enough multiplies to make compute time comparable to the load.
            let mut v = x;
            for _ in 0..12 {
                v = b.mul(v, x);
            }
            b.seq_write(so, v);
            let k = Arc::new(b.build().unwrap());
            let s = sched_for(&m, &k);
            let strip = 2048u32;
            let strips = 4u32;
            let bufs = [m.alloc_stream(1, strip), m.alloc_stream(1, strip)];
            let obufs = [m.alloc_stream(1, strip), m.alloc_stream(1, strip)];
            let mut p = StreamProgram::new();
            let mut last_kernel: Option<ProgOpId> = None;
            let mut last_in_buf: [Option<ProgOpId>; 2] = [None, None];
            for i in 0..strips {
                let pick = (i % 2) as usize;
                let mut deps: Vec<ProgOpId> = Vec::new();
                if let Some(prev) = last_in_buf[pick] {
                    deps.push(prev); // anti-dependence on buffer reuse
                }
                if !overlap {
                    if let Some(lk) = last_kernel {
                        deps.push(lk);
                    }
                }
                let l = p.load(
                    AddrPattern::contiguous(i * strip, strip),
                    bufs[pick],
                    false,
                    &deps,
                );
                let mut kdeps = vec![l];
                if let Some(lk) = last_kernel {
                    kdeps.push(lk);
                }
                let kk = p.kernel(
                    Arc::clone(&k),
                    s.clone(),
                    vec![bufs[pick], obufs[pick]],
                    (strip / 8) as u64,
                    &kdeps,
                );
                last_kernel = Some(kk);
                last_in_buf[pick] = Some(kk);
            }
            m.run(&p).cycles
        }
        let serial = run(false);
        let pipelined = run(true);
        assert!(
            (pipelined as f64) < 0.75 * serial as f64,
            "pipelined {pipelined} vs serial {serial}"
        );
    }

    /// Stats are deterministic across identical runs.
    #[test]
    fn deterministic_runs() {
        fn once() -> RunStats {
            let mut m = machine(ConfigName::Isrf4);
            let mut b = KernelBuilder::new("lut");
            let si = b.stream("in", StreamKind::SeqIn);
            let lut = b.stream("LUT", StreamKind::IdxInRead);
            let so = b.stream("out", StreamKind::SeqOut);
            let x = b.seq_read(si);
            let mask = b.constant(0xff);
            let a = b.and(x, mask);
            let v = b.idx_load(lut, a);
            let y = b.add(x, v);
            b.seq_write(so, y);
            let k = Arc::new(b.build().unwrap());
            let s = sched_for(&m, &k);
            let inp = m.alloc_stream(1, 512);
            let lutb = m.alloc_stream(1, 256 * 8);
            let outp = m.alloc_stream(1, 512);
            let ivals: Vec<u32> = (0..512).map(|i| i * 7).collect();
            m.write_stream(&inp, &ivals);
            let lvals: Vec<u32> = (0..2048).map(|i| i / 8).collect();
            m.write_stream(&lutb, &lvals);
            let mut p = StreamProgram::new();
            let kk = p.kernel(Arc::clone(&k), s, vec![inp, lutb, outp], 64, &[]);
            p.store(outp, AddrPattern::contiguous(9000, 512), false, &[kk]);
            m.run(&p)
        }
        assert_eq!(once(), once());
    }

    /// Functional check for the in-lane lookup above.
    #[test]
    fn inlane_lookup_values() {
        let mut m = machine(ConfigName::Isrf4);
        let mut b = KernelBuilder::new("lut");
        let si = b.stream("in", StreamKind::SeqIn);
        let lut = b.stream("LUT", StreamKind::IdxInRead);
        let so = b.stream("out", StreamKind::SeqOut);
        let x = b.seq_read(si);
        let mask = b.constant(0xff);
        let a = b.and(x, mask);
        let v = b.idx_load(lut, a);
        b.seq_write(so, v);
        let k = Arc::new(b.build().unwrap());
        let s = sched_for(&m, &k);
        let inp = m.alloc_stream(1, 64);
        let lutb = m.alloc_stream(1, 256 * 8);
        let outp = m.alloc_stream(1, 64);
        let ivals: Vec<u32> = (0..64).map(|i| (i * 3) % 256).collect();
        m.write_stream(&inp, &ivals);
        // Replicated per lane: global record r holds table[r / 8].
        let lvals: Vec<u32> = (0..2048).map(|r| 7000 + r / 8).collect();
        m.write_stream(&lutb, &lvals);
        let mut p = StreamProgram::new();
        let kk = p.kernel(Arc::clone(&k), s, vec![inp, lutb, outp], 8, &[]);
        p.store(outp, AddrPattern::contiguous(9000, 64), false, &[kk]);
        let stats = m.run(&p);
        for i in 0..64u32 {
            assert_eq!(m.mem().memory().read(9000 + i), 7000 + (i * 3) % 256);
        }
        assert_eq!(stats.srf.inlane_words, 64);
        assert_eq!(stats.srf.crosslane_words, 0);
    }

    /// The scratchpad is cluster-local state.
    #[test]
    fn scratchpad_is_lane_local() {
        let mut m = machine(ConfigName::Base);
        let mut b = KernelBuilder::new("sp");
        let so = b.stream("out", StreamKind::SeqOut);
        let lane = b.lane_id();
        let iter = b.iter_id();
        let addr = b.constant(5);
        // iter 0 writes lane id; iter 1 reads it back and emits it.
        let zero = b.constant(0);
        let is0 = b.eq(iter, zero);
        b.scratch_write(addr, lane); // writes every iter; value = lane
        let rd = b.scratch_read(addr);
        let _ = is0;
        b.seq_write(so, rd);
        let k = Arc::new(b.build().unwrap());
        let s = sched_for(&m, &k);
        let outp = m.alloc_stream(1, 16);
        let mut p = StreamProgram::new();
        p.kernel(Arc::clone(&k), s, vec![outp], 2, &[]);
        m.run(&p);
        let got = m.read_stream(&outp);
        let expect: Vec<u32> = (0..16).map(|r| r % 8).collect();
        assert_eq!(got, expect);
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;
    use crate::program::StreamProgram;
    use isrf_core::config::ConfigName;
    use isrf_kernel::ir::{KernelBuilder, StreamKind};
    use isrf_kernel::sched::{schedule, SchedParams};
    use isrf_mem::AddrPattern;
    use std::sync::Arc;

    fn copy_kernel() -> Arc<isrf_kernel::Kernel> {
        let mut b = KernelBuilder::new("copy");
        let i = b.stream("in", StreamKind::SeqIn);
        let o = b.stream("out", StreamKind::SeqOut);
        let x = b.seq_read(i);
        b.seq_write(o, x);
        Arc::new(b.build().unwrap())
    }

    #[test]
    fn zero_iteration_kernel_completes() {
        let cfg = MachineConfig::preset(ConfigName::Base);
        let k = copy_kernel();
        let s = schedule(&k, &SchedParams::from_machine(&cfg)).unwrap();
        let mut m = Machine::new(cfg).unwrap();
        let a = m.alloc_stream(1, 8);
        let b = m.alloc_stream(1, 8);
        let mut p = StreamProgram::new();
        p.kernel(k, s, vec![a, b], 0, &[]);
        let stats = m.run(&p);
        assert!(stats.cycles > 0, "dispatch still costs cycles");
        assert_eq!(stats.breakdown.kernel_loop, 0);
    }

    #[test]
    fn partial_output_blocks_flush() {
        // 8 records = 1 word per lane: far less than an m=4 block, so the
        // data only reaches the SRF via the end-of-kernel flush.
        let cfg = MachineConfig::preset(ConfigName::Base);
        let k = copy_kernel();
        let s = schedule(&k, &SchedParams::from_machine(&cfg)).unwrap();
        let mut m = Machine::new(cfg).unwrap();
        let a = m.alloc_stream(1, 8);
        let b = m.alloc_stream(1, 8);
        m.write_stream(&a, &[9, 8, 7, 6, 5, 4, 3, 2]);
        let mut p = StreamProgram::new();
        p.kernel(k, s, vec![a, b], 1, &[]);
        m.run(&p);
        assert_eq!(m.read_stream(&b), vec![9, 8, 7, 6, 5, 4, 3, 2]);
    }

    #[test]
    fn kernels_run_strictly_in_program_order() {
        // Kernel 2's input is kernel 1's output region; no explicit dep is
        // given beyond program order + the data dep edge.
        let cfg = MachineConfig::preset(ConfigName::Base);
        let k = copy_kernel();
        let s = schedule(&k, &SchedParams::from_machine(&cfg)).unwrap();
        let mut m = Machine::new(cfg).unwrap();
        let a = m.alloc_stream(1, 64);
        let b = m.alloc_stream(1, 64);
        let c = m.alloc_stream(1, 64);
        let data: Vec<u32> = (0..64).map(|i| i * 3).collect();
        m.write_stream(&a, &data);
        let mut p = StreamProgram::new();
        let k1 = p.kernel(Arc::clone(&k), s.clone(), vec![a, b], 8, &[]);
        p.kernel(k, s, vec![b, c], 8, &[k1]);
        m.run(&p);
        assert_eq!(m.read_stream(&c), data);
    }

    #[test]
    fn four_lane_machine_works() {
        // The simulator is generic in lane count even though the paper's
        // configurations use 8.
        let mut cfg = MachineConfig::preset(ConfigName::Isrf4);
        cfg.lanes = 4;
        cfg.validate().unwrap();
        let mut b = KernelBuilder::new("lut4");
        let sin = b.stream("in", StreamKind::SeqIn);
        let lut = b.stream("lut", StreamKind::IdxInRead);
        let so = b.stream("out", StreamKind::SeqOut);
        let x = b.seq_read(sin);
        let v = b.idx_load(lut, x);
        b.seq_write(so, v);
        let k = Arc::new(b.build().unwrap());
        let s = schedule(&k, &SchedParams::from_machine(&cfg)).unwrap();
        let mut m = Machine::new(cfg).unwrap();
        let inp = m.alloc_stream(1, 16);
        let table = m.alloc_stream(1, 16 * 4);
        let outp = m.alloc_stream(1, 16);
        m.write_stream(&inp, &(0..16).map(|i| i % 16).collect::<Vec<_>>());
        // Lane-local entry e = 100 + e (global record e*4 + lane).
        let tvals: Vec<u32> = (0..64).map(|r| 100 + r / 4).collect();
        m.write_stream(&table, &tvals);
        let mut p = StreamProgram::new();
        let kk = p.kernel(k, s, vec![inp, table, outp], 4, &[]);
        p.store(outp, AddrPattern::contiguous(0x1000, 16), false, &[kk]);
        m.run(&p);
        for i in 0..16u32 {
            assert_eq!(m.mem().memory().read(0x1000 + i), 100 + i % 16);
        }
    }

    #[test]
    fn free_srf_allows_region_reuse() {
        let cfg = MachineConfig::preset(ConfigName::Base);
        let mut m = Machine::new(cfg).unwrap();
        let a = m.alloc_stream(1, 1024);
        m.write_stream(&a, &vec![5; 1024]);
        m.free_srf();
        let b = m.alloc_stream(1, 1024);
        // Same storage, new binding: old contents still visible.
        assert_eq!(m.read_stream(&b), vec![5; 1024]);
    }

    #[test]
    fn stats_accumulate_across_runs_but_deltas_are_per_run() {
        let cfg = MachineConfig::preset(ConfigName::Base);
        let k = copy_kernel();
        let s = schedule(&k, &SchedParams::from_machine(&cfg)).unwrap();
        let mut m = Machine::new(cfg).unwrap();
        let a = m.alloc_stream(1, 64);
        let b = m.alloc_stream(1, 64);
        let mut p = StreamProgram::new();
        let l = p.load(AddrPattern::contiguous(0, 64), a, false, &[]);
        p.kernel(k, s, vec![a, b], 8, &[l]);
        let first = m.run(&p);
        let second = m.run(&p);
        assert_eq!(first.mem.bytes_read, 256);
        assert_eq!(second.mem.bytes_read, 256, "delta, not cumulative");
        assert_eq!(m.stats().mem.bytes_read, 512, "machine total accumulates");
        // Cycle counts of back-to-back runs may differ slightly (carried
        // bandwidth-credit state); a fresh machine is fully deterministic.
        assert!(first.cycles.abs_diff(second.cycles) <= 8);
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::program::StreamProgram;
    use isrf_core::config::ConfigName;
    use isrf_kernel::ir::{KernelBuilder, StreamKind};
    use isrf_kernel::sched::{schedule, SchedParams};
    use isrf_mem::AddrPattern;
    use std::sync::Arc;

    #[test]
    fn trace_records_overlap_in_order() {
        let cfg = MachineConfig::preset(ConfigName::Base);
        let mut b = KernelBuilder::new("t");
        let i = b.stream("in", StreamKind::SeqIn);
        let o = b.stream("out", StreamKind::SeqOut);
        let x = b.seq_read(i);
        b.seq_write(o, x);
        let k = Arc::new(b.build().unwrap());
        let s = schedule(&k, &SchedParams::from_machine(&cfg)).unwrap();
        let mut m = Machine::new(cfg).unwrap();
        m.set_tracer(Tracer::recording(1 << 16));
        let a = m.alloc_stream(1, 64);
        let c = m.alloc_stream(1, 64);
        let mut p = StreamProgram::new();
        let l = p.load(AddrPattern::contiguous(0, 64), a, false, &[]);
        let kk = p.kernel(k, s, vec![a, c], 8, &[l]);
        p.store(c, AddrPattern::contiguous(0x1000, 64), false, &[kk]);
        let stats = m.run(&p);
        let rec = m.tracer().recorder().expect("recording");
        let events: Vec<(u64, TraceEvent)> = rec.ring().iter().cloned().collect();
        assert_eq!(rec.ring().dropped(), 0, "ring sized for the whole run");
        // Load starts before the kernel; the kernel ends before its store
        // completes; every event carries a monotone cycle.
        let pos =
            |pred: &dyn Fn(&TraceEvent) -> bool| events.iter().position(|(_, e)| pred(e)).unwrap();
        let load_start = pos(&|e| matches!(e, TraceEvent::TransferStart { op: 0, .. }));
        let kernel_start =
            pos(&|e| matches!(e, TraceEvent::KernelStart { op: 1, name } if &**name == "t"));
        let load_done = pos(&|e| matches!(e, TraceEvent::TransferDone { op: 0, .. }));
        let kernel_end = pos(&|e| matches!(e, TraceEvent::KernelEnd { op: 1, .. }));
        let store_done = pos(&|e| matches!(e, TraceEvent::TransferDone { op: 2, .. }));
        assert!(load_start < kernel_start);
        assert!(load_done < kernel_end);
        assert!(kernel_end < store_done);
        assert!(
            events.windows(2).all(|w| w[0].0 <= w[1].0),
            "cycles monotone"
        );
        // Stall attribution audit: events reconstruct the Figure-12
        // breakdown exactly.
        let mismatches = rec.audit().verify(&stats.breakdown);
        assert!(mismatches.is_empty(), "audit: {mismatches:?}");
    }

    #[test]
    fn tracer_off_by_default_and_removable() {
        let cfg = MachineConfig::preset(ConfigName::Base);
        let mut m = Machine::new(cfg).unwrap();
        assert!(!m.tracer().enabled());
        assert!(m.tracer().recorder().is_none());
        let a = m.alloc_stream(1, 8);
        let mut p = StreamProgram::new();
        p.load(AddrPattern::contiguous(0, 8), a, false, &[]);
        m.run(&p);
        // Install, run, then take the recorder back out.
        m.set_tracer(Tracer::recording(256));
        m.run(&p);
        let rec = m.take_tracer().into_recorder().expect("was recording");
        assert!(!rec.ring().is_empty());
        assert!(!m.tracer().enabled(), "take leaves Null behind");
    }
}

#[cfg(test)]
mod contention_tests {
    use super::*;
    use crate::program::StreamProgram;
    use isrf_core::config::ConfigName;
    use isrf_kernel::ir::{KernelBuilder, StreamKind};
    use isrf_kernel::sched::{schedule, SchedParams};
    use isrf_mem::AddrPattern;
    use std::sync::Arc;

    /// A concurrent bulk memory transfer steals SRF-port cycles from the
    /// kernel's stream grants: the kernel slows down even though its data
    /// is already SRF-resident.
    #[test]
    fn memory_transfers_contend_for_the_srf_port() {
        fn run(with_background_store: bool) -> u64 {
            let cfg = MachineConfig::preset(ConfigName::Base);
            // A port-hungry kernel: 4 streams in, 4 out -> every cycle the
            // port serves someone.
            let mut b = KernelBuilder::new("hungry");
            let ins: Vec<_> = (0..4)
                .map(|i| b.stream(format!("i{i}"), StreamKind::SeqIn))
                .collect();
            let outs: Vec<_> = (0..4)
                .map(|i| b.stream(format!("o{i}"), StreamKind::SeqOut))
                .collect();
            for (i, o) in ins.iter().zip(&outs) {
                let x = b.seq_read(*i);
                b.seq_write(*o, x);
            }
            let k = Arc::new(b.build().unwrap());
            let s = schedule(&k, &SchedParams::from_machine(&cfg)).unwrap();
            let mut m = Machine::new(cfg).unwrap();
            let n = 2048u32;
            let bufs: Vec<_> = (0..8).map(|_| m.alloc_stream(1, n)).collect();
            let big = m.alloc_stream(1, 8192);
            let mut p = StreamProgram::new();
            let mut deps = vec![];
            if with_background_store {
                // An 8192-word store runs concurrently with the kernel.
                deps.push(p.store(big, AddrPattern::contiguous(0x10_0000, 8192), false, &[]));
            }
            let bindings: Vec<_> = bufs.to_vec();
            let kk = p.kernel(k, s, bindings, (n / 8) as u64, &[]);
            let _ = (kk, deps);
            // Measure the kernel's active window, not the program end (the
            // background store itself takes thousands of cycles).
            m.run(&p).main_loop_cycles
        }
        let quiet = run(false);
        let contended = run(true);
        assert!(
            contended > quiet,
            "background transfer must steal port cycles: {contended} vs {quiet}"
        );
        assert!(
            (contended as f64) < 1.5 * quiet as f64,
            "but only a modest share: {contended} vs {quiet}"
        );
    }
}
