//! Stream-level programs.
//!
//! At the stream level an application is a partial order of whole-stream
//! operations: memory loads/gathers into SRF ranges, kernel invocations
//! over SRF-resident streams, and stores/scatters back to memory. The
//! machine executes memory operations concurrently (overlapped with kernel
//! execution — the latency-tolerance mechanism of stream processors) while
//! kernels run one at a time, in program order, on the single kernel
//! sequencer.
//!
//! Dependences are explicit: each op lists the ops that must complete
//! first. Strip-mined applications chain `load(strip i+1)` in parallel with
//! `kernel(strip i)` and `store(strip i-1)` — classic double buffering.

use std::sync::Arc;

use isrf_kernel::ir::Kernel;
use isrf_kernel::sched::Schedule;
use isrf_mem::AddrPattern;

use crate::stream::StreamBinding;

/// Identifies an op within a [`StreamProgram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProgOpId(pub(crate) usize);

impl ProgOpId {
    /// Index into the program's op list.
    pub fn index(self) -> usize {
        self.0
    }
}

/// One stream-level operation.
#[derive(Debug, Clone)]
pub enum ProgOp {
    /// Load from memory into an SRF-resident stream.
    Load {
        /// Memory addresses, in stream order.
        pattern: AddrPattern,
        /// Destination stream (record-interleaved in the SRF).
        dst: StreamBinding,
        /// Route through the cache (Cache configuration only).
        cacheable: bool,
    },
    /// Store an SRF-resident stream to memory.
    Store {
        /// Source stream.
        src: StreamBinding,
        /// Memory addresses, in stream order.
        pattern: AddrPattern,
        /// Route through the cache.
        cacheable: bool,
    },
    /// Data-dependent gather: word addresses come from an SRF-resident
    /// index stream (computed by an earlier kernel), as in the indexed
    /// stream memory operations of Section 2. Address of element `k` is
    /// `base + index_stream[k]`.
    GatherDyn {
        /// SRF stream holding one word address (offset) per element.
        index_stream: StreamBinding,
        /// Added to every index.
        base: u32,
        /// Destination stream.
        dst: StreamBinding,
        /// Route through the cache.
        cacheable: bool,
    },
    /// Data-dependent scatter: `src[k]` is stored at `base +
    /// index_stream[k]`.
    ScatterDyn {
        /// Source stream.
        src: StreamBinding,
        /// SRF stream of word addresses.
        index_stream: StreamBinding,
        /// Added to every index.
        base: u32,
        /// Route through the cache.
        cacheable: bool,
    },
    /// Run a kernel over bound streams.
    Kernel {
        /// The kernel body.
        kernel: Arc<Kernel>,
        /// Its modulo schedule, shared with each dispatched `KernelRun`.
        schedule: Arc<Schedule>,
        /// One binding per kernel stream slot.
        bindings: Vec<StreamBinding>,
        /// Iterations per cluster.
        iters: u64,
    },
}

#[derive(Debug, Clone)]
pub(crate) struct ProgNode {
    pub op: ProgOp,
    pub deps: Vec<ProgOpId>,
}

/// A stream-level program: ops plus explicit dependences.
#[derive(Debug, Clone, Default)]
pub struct StreamProgram {
    pub(crate) nodes: Vec<ProgNode>,
}

impl StreamProgram {
    /// An empty program.
    pub fn new() -> Self {
        StreamProgram::default()
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the program has no ops.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The op at index `i` together with its dependences.
    ///
    /// Ops are stored in a topological order — every dependence points to
    /// an earlier index — so executing ops in index order respects the
    /// program's partial order (the functional reference executor relies
    /// on this).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn node(&self, i: usize) -> (&ProgOp, &[ProgOpId]) {
        let n = &self.nodes[i];
        (&n.op, &n.deps)
    }

    fn push(&mut self, op: ProgOp, deps: &[ProgOpId]) -> ProgOpId {
        for d in deps {
            assert!(d.0 < self.nodes.len(), "dependence on future op {d:?}");
        }
        self.nodes.push(ProgNode {
            op,
            deps: deps.to_vec(),
        });
        ProgOpId(self.nodes.len() - 1)
    }

    /// Append a memory→SRF load.
    ///
    /// # Panics
    ///
    /// Panics if the pattern length differs from the destination stream's
    /// word count, or a dependence references a later op.
    pub fn load(
        &mut self,
        pattern: AddrPattern,
        dst: StreamBinding,
        cacheable: bool,
        deps: &[ProgOpId],
    ) -> ProgOpId {
        assert_eq!(
            pattern.len() as u32,
            dst.words(),
            "load pattern covers {} words but the stream holds {}",
            pattern.len(),
            dst.words()
        );
        self.push(
            ProgOp::Load {
                pattern,
                dst,
                cacheable,
            },
            deps,
        )
    }

    /// Append an SRF→memory store.
    ///
    /// # Panics
    ///
    /// Panics on a length mismatch or a forward dependence.
    pub fn store(
        &mut self,
        src: StreamBinding,
        pattern: AddrPattern,
        cacheable: bool,
        deps: &[ProgOpId],
    ) -> ProgOpId {
        assert_eq!(
            pattern.len() as u32,
            src.words(),
            "store pattern covers {} words but the stream holds {}",
            pattern.len(),
            src.words()
        );
        self.push(
            ProgOp::Store {
                src,
                pattern,
                cacheable,
            },
            deps,
        )
    }

    /// Append a data-dependent gather (indices read from the SRF at issue).
    ///
    /// # Panics
    ///
    /// Panics if the index stream and destination differ in word count, or
    /// a dependence references a later op.
    pub fn gather_dyn(
        &mut self,
        index_stream: StreamBinding,
        base: u32,
        dst: StreamBinding,
        cacheable: bool,
        deps: &[ProgOpId],
    ) -> ProgOpId {
        assert_eq!(
            index_stream.words(),
            dst.words(),
            "gather needs one index per destination word"
        );
        self.push(
            ProgOp::GatherDyn {
                index_stream,
                base,
                dst,
                cacheable,
            },
            deps,
        )
    }

    /// Append a data-dependent scatter.
    ///
    /// # Panics
    ///
    /// Panics on a length mismatch or a forward dependence.
    pub fn scatter_dyn(
        &mut self,
        src: StreamBinding,
        index_stream: StreamBinding,
        base: u32,
        cacheable: bool,
        deps: &[ProgOpId],
    ) -> ProgOpId {
        assert_eq!(
            index_stream.words(),
            src.words(),
            "scatter needs one index per source word"
        );
        self.push(
            ProgOp::ScatterDyn {
                src,
                index_stream,
                base,
                cacheable,
            },
            deps,
        )
    }

    /// Append a kernel invocation.
    ///
    /// # Panics
    ///
    /// Panics if the binding count differs from the kernel's stream count
    /// or a dependence references a later op.
    pub fn kernel(
        &mut self,
        kernel: Arc<Kernel>,
        schedule: impl Into<Arc<Schedule>>,
        bindings: Vec<StreamBinding>,
        iters: u64,
        deps: &[ProgOpId],
    ) -> ProgOpId {
        assert_eq!(
            bindings.len(),
            kernel.streams.len(),
            "kernel `{}` needs {} bindings",
            kernel.name,
            kernel.streams.len()
        );
        self.push(
            ProgOp::Kernel {
                kernel,
                schedule: schedule.into(),
                bindings,
                iters,
            },
            deps,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::srf::SrfRange;

    fn binding(words: u32) -> StreamBinding {
        StreamBinding::whole(
            SrfRange {
                base: 0,
                words_per_bank: words.div_ceil(8),
            },
            1,
            words,
        )
    }

    #[test]
    fn build_simple_pipeline() {
        let mut p = StreamProgram::new();
        let b = binding(64);
        let l = p.load(AddrPattern::contiguous(0, 64), b, false, &[]);
        let s = p.store(b, AddrPattern::contiguous(100, 64), false, &[l]);
        assert_eq!(p.len(), 2);
        assert_eq!(s.0, 1);
        assert_eq!(p.nodes[1].deps, vec![l]);
    }

    #[test]
    #[should_panic(expected = "covers 32 words")]
    fn load_length_mismatch_panics() {
        let mut p = StreamProgram::new();
        p.load(AddrPattern::contiguous(0, 32), binding(64), false, &[]);
    }

    #[test]
    #[should_panic(expected = "dependence on future op")]
    fn forward_dependence_panics() {
        let mut p = StreamProgram::new();
        let b = binding(8);
        p.load(AddrPattern::contiguous(0, 8), b, false, &[ProgOpId(3)]);
    }
}
