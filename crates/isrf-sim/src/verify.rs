//! Static verification hook for [`Machine`](crate::Machine).
//!
//! The simulator does not implement any analysis itself — it defines the
//! *interface*: a [`ProgramVerifier`] installed on a machine is consulted
//! before [`Machine::run`](crate::Machine::run) simulates a program
//! (always, never, or only in debug builds, per [`VerifyPolicy`]). The
//! concrete analyzer lives in the `isrf-verify` crate; keeping only the
//! trait here avoids a dependency cycle (`isrf-verify` depends on this
//! crate for [`StreamProgram`]).

use std::fmt;

use isrf_core::config::MachineConfig;

use crate::program::StreamProgram;

/// One finding from a [`ProgramVerifier`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code, e.g. `V101`.
    pub code: String,
    /// The check that produced it, e.g. `liveness`.
    pub check: String,
    /// Human-readable description.
    pub message: String,
    /// Index of the offending op in the [`StreamProgram`], when known.
    pub prog_op: Option<usize>,
    /// Name of the offending kernel, when the finding is inside one.
    pub kernel: Option<String>,
    /// Index of the offending op inside the kernel body, when known.
    pub kernel_op: Option<usize>,
    /// `.isrf` source line, when the kernel was compiled from source.
    pub line: Option<u32>,
    /// Supporting facts — derived value intervals and the dataflow path
    /// that produced them. Rendered by explain modes; [`fmt::Display`]
    /// stays single-line.
    pub notes: Vec<String>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.code, self.check)?;
        if let Some(op) = self.prog_op {
            write!(f, " program op {op}")?;
        }
        if let Some(k) = &self.kernel {
            write!(f, " kernel `{k}`")?;
        }
        if let Some(op) = self.kernel_op {
            write!(f, " op {op}")?;
        }
        if let Some(line) = self.line {
            write!(f, " (line {line})")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// Typed error returned when verification finds problems.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// All findings, most severe first (analyzer-defined order).
    pub diagnostics: Vec<Diagnostic>,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "program failed verification with {} finding(s):",
            self.diagnostics.len()
        )?;
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

impl std::error::Error for VerifyError {}

/// Machine-side facts a verifier needs beyond the program itself: how much
/// SRF space the bump allocator has handed out, and which per-bank word
/// intervals already hold live data (from earlier runs or direct
/// [`Machine::write_stream`](crate::Machine::write_stream) setup).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VerifyEnv {
    /// Words per bank handed out by the SRF allocator so far.
    pub allocated_words_per_bank: u32,
    /// Per-bank `[start, end)` word intervals known to hold data, sorted
    /// and non-overlapping.
    pub filled: Vec<(u32, u32)>,
}

impl VerifyEnv {
    /// Whether `[lo, hi)` is entirely covered by filled intervals.
    pub fn is_filled(&self, lo: u32, hi: u32) -> bool {
        if lo >= hi {
            return true;
        }
        let mut need = lo;
        for &(s, e) in &self.filled {
            if s > need {
                return false;
            }
            if e > need {
                need = e;
                if need >= hi {
                    return true;
                }
            }
        }
        false
    }
}

/// A static analysis run against a program before simulation.
pub trait ProgramVerifier: Send + Sync + fmt::Debug {
    /// Analyze `program` against machine `cfg` and SRF state `env`;
    /// returns all findings (empty = clean).
    fn verify(
        &self,
        cfg: &MachineConfig,
        env: &VerifyEnv,
        program: &StreamProgram,
    ) -> Vec<Diagnostic>;
}

/// When the installed verifier runs inside [`Machine::run`](crate::Machine::run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VerifyPolicy {
    /// Never run automatically (explicit
    /// [`Machine::verify_program`](crate::Machine::verify_program) only).
    Off,
    /// Run in debug builds only — the default: tests get full checking,
    /// release benchmarking pays nothing.
    #[default]
    Debug,
    /// Run before every simulation.
    Always,
}

impl VerifyPolicy {
    /// Whether the policy is active in this build.
    pub fn active(self) -> bool {
        match self {
            VerifyPolicy::Off => false,
            VerifyPolicy::Debug => cfg!(debug_assertions),
            VerifyPolicy::Always => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filled_coverage() {
        let env = VerifyEnv {
            allocated_words_per_bank: 64,
            filled: vec![(0, 16), (16, 32), (40, 48)],
        };
        assert!(env.is_filled(0, 32));
        assert!(env.is_filled(4, 20));
        assert!(env.is_filled(42, 48));
        assert!(!env.is_filled(30, 41));
        assert!(!env.is_filled(48, 49));
        assert!(env.is_filled(5, 5), "empty interval is trivially filled");
    }

    #[test]
    fn diagnostic_display_mentions_everything() {
        let d = Diagnostic {
            code: "V101".into(),
            check: "liveness".into(),
            message: "stream never filled".into(),
            prog_op: Some(3),
            kernel: Some("lookup".into()),
            kernel_op: Some(2),
            line: Some(9),
            notes: vec!["interval [0, 7]".into()],
        };
        let s = d.to_string();
        for part in ["V101", "liveness", "program op 3", "lookup", "line 9"] {
            assert!(s.contains(part), "missing `{part}` in `{s}`");
        }
    }
}
