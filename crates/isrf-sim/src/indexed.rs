//! Indexed SRF access machinery (Sections 4.2, 4.4, 4.5).
//!
//! Clusters push *record* addresses into per-stream, per-lane address
//! FIFOs. Counters at each FIFO head expand records into single-word
//! accesses. When the global (stage-1) arbiter grants the SRF port to the
//! indexed streams, local (stage-2) arbitration in each lane assigns FIFO
//! heads to sub-arrays:
//!
//! * **In-lane** (`ISRF1`/`ISRF4`): up to `inlane_words_per_cycle` accesses
//!   per lane per cycle, each to a distinct sub-array, at most one access
//!   per stream per cycle (the implementation restriction the paper notes
//!   in Section 5.3 — ISRF1 and ISRF4 differ only for kernels with more
//!   than one indexed stream). Conflicting accesses serialize; only FIFO
//!   heads arbitrate, so a blocked head stalls the requests behind it
//!   (head-of-line blocking, visible in Figure 17).
//! * **Cross-lane**: each cluster sends at most one index per cycle over
//!   the index network; each *bank* accepts at most `network_ports_per_bank`
//!   cross-lane accesses per cycle, and the returning data shares the
//!   inter-cluster network, where explicit communications have priority.
//!
//! Read data arrives `inlane_latency`/`crosslane_latency` cycles later into
//! the stream's data buffer, from which the cluster's split data-read op
//! pops it in issue order.

use std::collections::VecDeque;

use isrf_core::config::{CrossLaneTopology, MachineConfig};
use isrf_core::snap::{Dec, Enc, SnapError};
use isrf_core::stats::SrfTraffic;
use isrf_core::Word;
use isrf_trace::{IdxRejectReason, TraceEvent, Tracer};

use crate::srf::Srf;
use crate::stream::StreamBinding;

/// Flavor of an indexed stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdxKind {
    /// In-lane read (`idxl_istream`): addresses are lane-local record
    /// indices into the lane's own bank region.
    InLaneRead,
    /// In-lane write (`idxl_ostream`).
    InLaneWrite,
    /// Cross-lane read (`idx_istream`): addresses are global record
    /// indices; record `r` lives in bank `r mod N`.
    CrossLaneRead,
}

/// Write payload of a queued record access. Kernel indexed writes are
/// word-granular, so the hot path stays allocation-free; multi-word
/// payloads (direct `push_write` callers) still heap-allocate.
#[derive(Debug, Clone)]
enum IdxData {
    /// A read: no payload.
    None,
    /// Single-word write (the kernel hot path).
    One(Word),
    /// Multi-word record write.
    Many(Vec<Word>),
}

impl IdxData {
    fn word(&self, i: u32) -> Word {
        match self {
            IdxData::None => unreachable!("read request has no write data"),
            IdxData::One(w) => {
                debug_assert_eq!(i, 0);
                *w
            }
            IdxData::Many(v) => v[i as usize],
        }
    }
}

/// One queued record access.
#[derive(Debug, Clone)]
struct IdxReq {
    record: u32,
    /// Write data (one word per record word); `None` for reads.
    data: IdxData,
}

/// Per-lane FIFOs of one indexed stream.
#[derive(Debug, Clone)]
struct IdxLane {
    addr_fifo: VecDeque<IdxReq>,
    /// Words of the FIFO head already issued to the SRAM.
    head_word: u32,
    /// Issued reads awaiting their latency: `(ready_cycle, word)`.
    inflight: VecDeque<(u64, Word)>,
    /// Data ready for the cluster, in issue order.
    data: VecDeque<Word>,
}

impl IdxLane {
    fn new() -> Self {
        IdxLane {
            addr_fifo: VecDeque::new(),
            head_word: 0,
            inflight: VecDeque::new(),
            data: VecDeque::new(),
        }
    }
}

/// Runtime state of one indexed stream across all lanes.
#[derive(Debug, Clone)]
pub struct IdxState {
    /// The SRF binding addressed by this stream.
    pub binding: StreamBinding,
    /// Stream flavor.
    pub kind: IdxKind,
    lanes: Vec<IdxLane>,
    fifo_cap: usize,
    buf_cap: usize,
    /// Address-FIFO entries across all lanes — lets the per-cycle
    /// `pending_addresses`/`drained` checks skip the lane scan.
    addr_entries: usize,
    /// In-flight (issued, not yet arrived) words across all lanes — lets
    /// `tick_arrivals` return immediately on the common no-arrival cycle.
    inflight_words: usize,
}

impl IdxState {
    /// Create the state for `lanes` lanes with the configured FIFO and
    /// stream-buffer capacities.
    pub fn new(binding: StreamBinding, kind: IdxKind, lanes: usize, m: &MachineConfig) -> Self {
        let idx = m
            .srf
            .indexed
            .as_ref()
            .expect("indexed stream on a machine without indexed SRF support");
        IdxState {
            binding,
            kind,
            lanes: (0..lanes).map(|_| IdxLane::new()).collect(),
            fifo_cap: idx.addr_fifo_entries,
            buf_cap: m.srf.stream_buffer_words,
            addr_entries: 0,
            inflight_words: 0,
        }
    }

    /// Room in lane `l`'s address FIFO?
    pub fn can_push_addr(&self, lane: usize) -> bool {
        self.lanes[lane].addr_fifo.len() < self.fifo_cap
    }

    /// Queue a read-record address from lane `l`'s cluster.
    pub fn push_addr(&mut self, lane: usize, record: u32) {
        debug_assert!(self.can_push_addr(lane));
        debug_assert!(self.kind != IdxKind::InLaneWrite);
        self.lanes[lane].addr_fifo.push_back(IdxReq {
            record,
            data: IdxData::None,
        });
        self.addr_entries += 1;
    }

    /// Queue a write of `data` (one record) at `record` from lane `l`.
    pub fn push_write(&mut self, lane: usize, record: u32, data: Vec<Word>) {
        debug_assert!(self.can_push_addr(lane));
        debug_assert_eq!(self.kind, IdxKind::InLaneWrite);
        debug_assert_eq!(data.len(), self.binding.record_words as usize);
        self.lanes[lane].addr_fifo.push_back(IdxReq {
            record,
            data: IdxData::Many(data),
        });
        self.addr_entries += 1;
    }

    /// Queue a single-word write at `record` from lane `l` without heap
    /// allocation (the kernel hot path: indexed write bindings are
    /// word-granular).
    pub fn push_write_word(&mut self, lane: usize, record: u32, word: Word) {
        debug_assert!(self.can_push_addr(lane));
        debug_assert_eq!(self.kind, IdxKind::InLaneWrite);
        debug_assert_eq!(self.binding.record_words, 1);
        self.lanes[lane].addr_fifo.push_back(IdxReq {
            record,
            data: IdxData::One(word),
        });
        self.addr_entries += 1;
    }

    /// Is a data word ready for lane `l`?
    pub fn can_pop_data(&self, lane: usize) -> bool {
        !self.lanes[lane].data.is_empty()
    }

    /// Pop the next ready data word for lane `l`.
    ///
    /// # Panics
    ///
    /// Panics if no data is ready.
    pub fn pop_data(&mut self, lane: usize) -> Word {
        self.lanes[lane]
            .data
            .pop_front()
            .expect("no indexed data ready")
    }

    /// Move arrived in-flight words into the data buffers.
    pub fn tick_arrivals(&mut self, now: u64) {
        if self.inflight_words == 0 {
            return; // nothing issued: the common per-cycle case
        }
        for lane in &mut self.lanes {
            while lane.inflight.front().is_some_and(|&(t, _)| t <= now) {
                let (_, w) = lane.inflight.pop_front().expect("checked front");
                lane.data.push_back(w);
                self.inflight_words -= 1;
            }
        }
    }

    /// Move arrived in-flight words into the data buffers, consuming one
    /// unit of `budget` per word (cross-lane returns share the
    /// inter-cluster data network with explicit communications, which have
    /// priority; a queued return simply waits for a free slot).
    pub fn tick_arrivals_budgeted(&mut self, now: u64, budget: &mut usize) {
        if self.inflight_words == 0 {
            return;
        }
        for lane in &mut self.lanes {
            while *budget > 0 && lane.inflight.front().is_some_and(|&(t, _)| t <= now) {
                let (_, w) = lane.inflight.pop_front().expect("checked front");
                lane.data.push_back(w);
                self.inflight_words -= 1;
                *budget -= 1;
            }
        }
    }

    /// Any address still queued or being expanded?
    pub fn pending_addresses(&self) -> bool {
        self.addr_entries > 0
    }

    /// All queues empty (used to detect kernel-drain completion)?
    pub fn drained(&self) -> bool {
        self.addr_entries == 0 && self.inflight_words == 0
    }

    /// Total occupancy of lane `l`'s data path (buffered + in flight),
    /// in words — used to reserve buffer space before issuing.
    fn data_occupancy(&self, lane: usize) -> usize {
        self.lanes[lane].data.len() + self.lanes[lane].inflight.len()
    }

    /// Lane-local SRF offset of word `head_word` of `record`.
    fn inlane_offset(&self, record: u32, head_word: u32) -> u32 {
        self.binding.range.base + record * self.binding.record_words + head_word
    }

    /// `(bank, offset)` of word `head_word` of global `record`.
    fn crosslane_target(&self, record: u32, head_word: u32, lanes: usize) -> (usize, u32) {
        let lane = (record as usize) % lanes;
        let offset = self.binding.range.base
            + (record / lanes as u32) * self.binding.record_words
            + head_word;
        (lane, offset)
    }

    /// Serialize the dynamic state: every lane's address FIFO (with write
    /// payloads), head-expansion cursor, in-flight words, and ready data.
    pub(crate) fn encode_state(&self, e: &mut Enc) {
        e.usize(self.lanes.len());
        for lane in &self.lanes {
            e.usize(lane.addr_fifo.len());
            for req in &lane.addr_fifo {
                e.u32(req.record);
                match &req.data {
                    IdxData::None => e.u8(0),
                    IdxData::One(w) => {
                        e.u8(1);
                        e.u32(*w);
                    }
                    IdxData::Many(v) => {
                        e.u8(2);
                        e.usize(v.len());
                        for &w in v {
                            e.u32(w);
                        }
                    }
                }
            }
            e.u32(lane.head_word);
            e.usize(lane.inflight.len());
            for &(t, w) in &lane.inflight {
                e.u64(t);
                e.u32(w);
            }
            e.usize(lane.data.len());
            for &w in &lane.data {
                e.u32(w);
            }
        }
        e.usize(self.addr_entries);
        e.usize(self.inflight_words);
    }

    /// Overwrite the dynamic state from [`IdxState::encode_state`] bytes.
    pub(crate) fn decode_state(&mut self, d: &mut Dec) -> Result<(), SnapError> {
        let n = d.usize()?;
        if n != self.lanes.len() {
            return Err(SnapError::Mismatch(format!(
                "indexed stream lane count {n} != {}",
                self.lanes.len()
            )));
        }
        for lane in &mut self.lanes {
            lane.addr_fifo.clear();
            let reqs = d.usize()?;
            for _ in 0..reqs {
                let record = d.u32()?;
                let data = match d.u8()? {
                    0 => IdxData::None,
                    1 => IdxData::One(d.u32()?),
                    2 => {
                        let len = d.usize()?;
                        let mut v = Vec::with_capacity(len);
                        for _ in 0..len {
                            v.push(d.u32()?);
                        }
                        IdxData::Many(v)
                    }
                    t => return Err(SnapError::Mismatch(format!("unknown IdxData tag {t}"))),
                };
                lane.addr_fifo.push_back(IdxReq { record, data });
            }
            lane.head_word = d.u32()?;
            lane.inflight.clear();
            let inflight = d.usize()?;
            for _ in 0..inflight {
                let t = d.u64()?;
                let w = d.u32()?;
                lane.inflight.push_back((t, w));
            }
            lane.data.clear();
            let ready = d.usize()?;
            for _ in 0..ready {
                lane.data.push_back(d.u32()?);
            }
        }
        self.addr_entries = d.usize()?;
        self.inflight_words = d.usize()?;
        Ok(())
    }
}

/// Arbitration parameters extracted from the machine configuration.
#[derive(Debug, Clone, Copy)]
pub struct IdxParams {
    /// Lanes in the machine.
    pub lanes: usize,
    /// Sub-arrays per bank.
    pub subarrays: usize,
    /// Peak in-lane indexed accesses per lane per cycle (1 or `s`).
    pub inlane_words_per_cycle: usize,
    /// Peak cross-lane issues per lane per cycle.
    pub crosslane_words_per_cycle: usize,
    /// In-lane access latency.
    pub inlane_latency: u64,
    /// Cross-lane access latency.
    pub crosslane_latency: u64,
    /// Cross-lane network ports per SRF bank.
    pub network_ports_per_bank: usize,
    /// Cross-lane interconnect topology.
    pub topology: CrossLaneTopology,
}

impl IdxParams {
    /// Extract from a machine configuration.
    ///
    /// # Panics
    ///
    /// Panics when the machine has no indexed SRF support.
    pub fn from_machine(m: &MachineConfig) -> Self {
        let idx = m.srf.indexed.as_ref().expect("machine lacks indexed SRF");
        IdxParams {
            lanes: m.lanes,
            subarrays: m.srf.subarrays,
            inlane_words_per_cycle: idx.inlane_words_per_cycle,
            crosslane_words_per_cycle: idx.crosslane_words_per_cycle,
            inlane_latency: idx.inlane_latency as u64,
            crosslane_latency: idx.crosslane_latency as u64,
            network_ports_per_bank: idx.network_ports_per_bank,
            topology: idx.crosslane_topology,
        }
    }
}

/// Extra cycles a cross-lane access pays on a sparse interconnect:
/// crossbars deliver in one traversal; rings pay one cycle per hop beyond
/// the first (shortest direction).
pub fn topology_extra_latency(
    topology: CrossLaneTopology,
    from: usize,
    to: usize,
    lanes: usize,
) -> u64 {
    match topology {
        CrossLaneTopology::Crossbar => 0,
        CrossLaneTopology::Ring => {
            let d = from.abs_diff(to);
            (d.min(lanes - d).saturating_sub(1)) as u64
        }
    }
}

/// Per-cycle global cross-lane grant budget of the interconnect: a
/// crossbar can move one access per lane; a bidirectional ring is
/// bisection-limited to 4 concurrent traversals.
pub fn topology_issue_budget(topology: CrossLaneTopology, lanes: usize) -> usize {
    match topology {
        CrossLaneTopology::Crossbar => lanes,
        CrossLaneTopology::Ring => 4.min(lanes),
    }
}

/// Upper bound on SRF banks supported by the per-cycle occupancy masks in
/// [`service_indexed`] (one `u64` of sub-array bits per bank, on the
/// stack).
const MAX_BANKS: usize = 64;

/// One cycle of stage-2 (local) arbitration and SRAM access for all
/// indexed streams. Call when stage-1 grants the port to the indexed
/// group. Cross-lane *issue* uses the dedicated index network and is never
/// blocked by explicit communication; only the data *returns* contend for
/// the shared network (see [`IdxState::tick_arrivals_budgeted`]). `rr` is
/// a persistent round-robin pointer over streams. Every access served and
/// every rejected FIFO head is reported to `tracer` (budget exhaustion is
/// not a rejection — the head was never considered).
pub fn service_indexed(
    states: &mut [IdxState],
    srf: &mut Srf,
    now: u64,
    p: &IdxParams,
    rr: &mut usize,
    traffic: &mut SrfTraffic,
    tracer: &mut Tracer,
) {
    let n_streams = states.len();
    if n_streams == 0 {
        return;
    }
    // Sub-array occupancy per bank for this cycle (shared between in-lane
    // and cross-lane accesses — the SRAM is single-ported per sub-array).
    // One bit per sub-array, one word per bank: this is rebuilt every
    // cycle, so it lives on the stack instead of the heap.
    assert!(
        p.lanes <= MAX_BANKS && p.subarrays <= 64,
        "bank/sub-array occupancy masks support at most {MAX_BANKS} banks of 64 sub-arrays"
    );
    let mut busy = [0u64; MAX_BANKS];

    // --- In-lane service: per lane, up to `inlane_words_per_cycle`
    // accesses to distinct sub-arrays, at most one per stream. ---
    #[allow(clippy::needless_range_loop)] // lane indexes several structures
    for lane in 0..p.lanes {
        let mut budget = p.inlane_words_per_cycle;
        for k in 0..n_streams {
            if budget == 0 {
                break;
            }
            let si = (*rr + k) % n_streams;
            let st = &mut states[si];
            if st.kind == IdxKind::CrossLaneRead {
                continue;
            }
            let Some(head) = st.lanes[lane].addr_fifo.front() else {
                continue;
            };
            let record = head.record;
            let head_word = st.lanes[lane].head_word;
            let is_read = st.kind == IdxKind::InLaneRead;
            if is_read && st.data_occupancy(lane) >= st.buf_cap {
                if tracer.enabled() {
                    tracer.emit(
                        now,
                        TraceEvent::IdxReject {
                            stream: si as u8,
                            lane: lane as u8,
                            crosslane: false,
                            reason: IdxRejectReason::DataBufferFull,
                        },
                    );
                }
                continue; // no room to land the data
            }
            let offset = st.inlane_offset(record, head_word);
            if offset >= st.binding.range.base + st.binding.range.words_per_bank {
                // Out-of-range address: treat as mapped to the last word so
                // buggy kernels fail loudly in functional checks, not here.
                debug_assert!(false, "in-lane index {record} out of range");
            }
            let sub = srf.subarray_of(offset.min(srf.bank_words() - 1));
            if busy[lane] & (1 << sub) != 0 {
                if tracer.enabled() {
                    tracer.emit(
                        now,
                        TraceEvent::IdxReject {
                            stream: si as u8,
                            lane: lane as u8,
                            crosslane: false,
                            reason: IdxRejectReason::SubarrayConflict,
                        },
                    );
                }
                continue; // sub-array conflict: serialize (head-of-line)
            }
            busy[lane] |= 1 << sub;
            budget -= 1;
            traffic.inlane_words += 1;
            if is_read {
                let w = srf.read(lane, offset);
                st.lanes[lane]
                    .inflight
                    .push_back((now + p.inlane_latency, w));
                st.inflight_words += 1;
            } else {
                let w = st.lanes[lane]
                    .addr_fifo
                    .front()
                    .expect("head exists")
                    .data
                    .word(head_word);
                srf.write(lane, offset, w);
            }
            // Advance the head expansion counter.
            let l = &mut st.lanes[lane];
            l.head_word += 1;
            if l.head_word == st.binding.record_words {
                l.head_word = 0;
                l.addr_fifo.pop_front();
                st.addr_entries -= 1;
            }
            if tracer.enabled() {
                let fifo_after = st.lanes[lane].addr_fifo.len() as u8;
                tracer.emit(
                    now,
                    TraceEvent::IdxAccess {
                        stream: si as u8,
                        lane: lane as u8,
                        bank: lane as u8,
                        subarray: sub as u8,
                        write: !is_read,
                        crosslane: false,
                        hops: 0,
                        fifo_after,
                    },
                );
            }
        }
    }

    // --- Cross-lane service: each lane offers one index per cycle over
    // the dedicated index network; banks accept up to
    // `network_ports_per_bank`; data returns are queued for the shared
    // inter-cluster network. ---
    {
        let mut bank_ports = [0usize; MAX_BANKS];
        bank_ports[..p.lanes].fill(p.network_ports_per_bank);
        let mut global_budget = topology_issue_budget(p.topology, p.lanes);
        for lane in 0..p.lanes {
            let mut issues = p.crosslane_words_per_cycle;
            for k in 0..n_streams {
                if issues == 0 || global_budget == 0 {
                    break;
                }
                let si = (*rr + k) % n_streams;
                let st = &mut states[si];
                if st.kind != IdxKind::CrossLaneRead {
                    continue;
                }
                let Some(head) = st.lanes[lane].addr_fifo.front() else {
                    continue;
                };
                if st.data_occupancy(lane) >= st.buf_cap {
                    if tracer.enabled() {
                        tracer.emit(
                            now,
                            TraceEvent::IdxReject {
                                stream: si as u8,
                                lane: lane as u8,
                                crosslane: true,
                                reason: IdxRejectReason::DataBufferFull,
                            },
                        );
                    }
                    continue;
                }
                let (bank, offset) =
                    st.crosslane_target(head.record, st.lanes[lane].head_word, p.lanes);
                if bank_ports[bank] == 0 {
                    if tracer.enabled() {
                        tracer.emit(
                            now,
                            TraceEvent::IdxReject {
                                stream: si as u8,
                                lane: lane as u8,
                                crosslane: true,
                                reason: IdxRejectReason::BankPortBusy,
                            },
                        );
                    }
                    continue; // bank's network ports exhausted this cycle
                }
                let sub = srf.subarray_of(offset.min(srf.bank_words() - 1));
                if busy[bank] & (1 << sub) != 0 {
                    if tracer.enabled() {
                        tracer.emit(
                            now,
                            TraceEvent::IdxReject {
                                stream: si as u8,
                                lane: lane as u8,
                                crosslane: true,
                                reason: IdxRejectReason::SubarrayConflict,
                            },
                        );
                    }
                    continue; // sub-array conflict with another access
                }
                busy[bank] |= 1 << sub;
                bank_ports[bank] -= 1;
                issues -= 1;
                global_budget -= 1;
                traffic.crosslane_words += 1;
                let w = srf.read(bank, offset);
                let extra = topology_extra_latency(p.topology, lane, bank, p.lanes);
                st.lanes[lane]
                    .inflight
                    .push_back((now + p.crosslane_latency + extra, w));
                st.inflight_words += 1;
                let l = &mut st.lanes[lane];
                l.head_word += 1;
                if l.head_word == st.binding.record_words {
                    l.head_word = 0;
                    l.addr_fifo.pop_front();
                    st.addr_entries -= 1;
                }
                if tracer.enabled() {
                    let fifo_after = st.lanes[lane].addr_fifo.len() as u8;
                    tracer.emit(
                        now,
                        TraceEvent::IdxAccess {
                            stream: si as u8,
                            lane: lane as u8,
                            bank: bank as u8,
                            subarray: sub as u8,
                            write: false,
                            crosslane: true,
                            hops: extra as u8,
                            fifo_after,
                        },
                    );
                }
            }
        }
    }

    *rr = (*rr + 1) % n_streams.max(1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::srf::SrfRange;
    use isrf_core::config::ConfigName;

    fn setup(kind: IdxKind) -> (Srf, IdxState, IdxParams, MachineConfig) {
        let m = MachineConfig::preset(ConfigName::Isrf4);
        let mut srf = Srf::new(&m);
        let range = srf.alloc(4096);
        // Fill lane-local pattern: lane l offset o holds l*10000 + o.
        for l in 0..8 {
            for o in 0..4096u32 {
                srf.write(l, o, l as u32 * 10_000 + o);
            }
        }
        let b = StreamBinding::whole(range, 1, 4096);
        let st = IdxState::new(b, kind, 8, &m);
        let p = IdxParams::from_machine(&m);
        (srf, st, p, m)
    }

    fn run_cycles(
        states: &mut [IdxState],
        srf: &mut Srf,
        p: &IdxParams,
        from: u64,
        cycles: u64,
    ) -> SrfTraffic {
        let mut traffic = SrfTraffic::default();
        let mut rr = 0;
        for now in from..from + cycles {
            for s in states.iter_mut() {
                s.tick_arrivals(now);
            }
            service_indexed(
                states,
                srf,
                now,
                p,
                &mut rr,
                &mut traffic,
                &mut Tracer::Null,
            );
        }
        for s in states.iter_mut() {
            s.tick_arrivals(from + cycles + 100);
        }
        traffic
    }

    #[test]
    fn inlane_read_returns_after_latency() {
        let (mut srf, mut st, p, _) = setup(IdxKind::InLaneRead);
        st.push_addr(0, 42);
        let mut states = [st];
        let mut traffic = SrfTraffic::default();
        let mut rr = 0;
        service_indexed(
            &mut states,
            &mut srf,
            0,
            &p,
            &mut rr,
            &mut traffic,
            &mut Tracer::Null,
        );
        assert_eq!(traffic.inlane_words, 1);
        states[0].tick_arrivals(3);
        assert!(!states[0].can_pop_data(0), "latency is 4");
        states[0].tick_arrivals(4);
        assert!(states[0].can_pop_data(0));
        assert_eq!(states[0].pop_data(0), 42);
    }

    #[test]
    fn single_stream_is_limited_to_one_word_per_cycle() {
        // Even on ISRF4, one stream issues at most one access per cycle.
        let (mut srf, mut st, p, _) = setup(IdxKind::InLaneRead);
        for r in 0..8 {
            st.push_addr(0, r * 1024); // all different sub-arrays
        }
        let mut states = [st];
        let t = run_cycles(&mut states, &mut srf, &p, 0, 4);
        assert_eq!(t.inlane_words, 4, "one per cycle for a single stream");
    }

    #[test]
    fn four_streams_reach_four_words_per_cycle() {
        let (mut srf, st0, p, m) = setup(IdxKind::InLaneRead);
        let b = st0.binding;
        let mut states = vec![st0];
        for _ in 0..3 {
            states.push(IdxState::new(b, IdxKind::InLaneRead, 8, &m));
        }
        // Each stream targets its own sub-array: no conflicts.
        for (i, s) in states.iter_mut().enumerate() {
            for k in 0..4 {
                s.push_addr(0, (i as u32) * 1024 + k);
            }
        }
        let t = run_cycles(&mut states, &mut srf, &p, 0, 4);
        assert_eq!(t.inlane_words, 16, "4 streams x 4 cycles");
    }

    #[test]
    fn subarray_conflicts_serialize() {
        let (mut srf, st0, p, m) = setup(IdxKind::InLaneRead);
        let b = st0.binding;
        let mut states = vec![st0, IdxState::new(b, IdxKind::InLaneRead, 8, &m)];
        // Both streams target sub-array 0.
        states[0].push_addr(0, 5);
        states[1].push_addr(0, 7);
        let mut traffic = SrfTraffic::default();
        let mut rr = 0;
        service_indexed(
            &mut states,
            &mut srf,
            0,
            &p,
            &mut rr,
            &mut traffic,
            &mut Tracer::Null,
        );
        assert_eq!(traffic.inlane_words, 1, "conflict: only one issues");
        service_indexed(
            &mut states,
            &mut srf,
            1,
            &p,
            &mut rr,
            &mut traffic,
            &mut Tracer::Null,
        );
        assert_eq!(
            traffic.inlane_words, 2,
            "the delayed access issues next cycle"
        );
    }

    #[test]
    fn isrf1_serves_one_access_per_lane() {
        let m = MachineConfig::preset(ConfigName::Isrf1);
        let mut srf = Srf::new(&m);
        let range = srf.alloc(4096);
        let b = StreamBinding::whole(range, 1, 4096);
        let mut states = vec![
            IdxState::new(b, IdxKind::InLaneRead, 8, &m),
            IdxState::new(b, IdxKind::InLaneRead, 8, &m),
        ];
        states[0].push_addr(0, 0); // sub-array 0
        states[1].push_addr(0, 1024); // sub-array 1: no conflict, but ISRF1
        let p = IdxParams::from_machine(&m);
        let mut traffic = SrfTraffic::default();
        let mut rr = 0;
        service_indexed(
            &mut states,
            &mut srf,
            0,
            &p,
            &mut rr,
            &mut traffic,
            &mut Tracer::Null,
        );
        assert_eq!(traffic.inlane_words, 1, "ISRF1: one indexed word per lane");
    }

    #[test]
    fn record_expansion_issues_word_per_cycle() {
        let (mut srf, _, p, m) = setup(IdxKind::InLaneRead);
        let range = SrfRange {
            base: 0,
            words_per_bank: 4096,
        };
        let b = StreamBinding::whole(range, 4, 1024);
        let mut st = IdxState::new(b, IdxKind::InLaneRead, 8, &m);
        st.push_addr(2, 10); // record 10 = lane-local words 40..44
        let mut states = [st];
        let t = run_cycles(&mut states, &mut srf, &p, 0, 6);
        assert_eq!(t.inlane_words, 4, "one record = 4 word accesses");
        let got: Vec<Word> = (0..4).map(|_| states[0].pop_data(2)).collect();
        assert_eq!(got, [20_040, 20_041, 20_042, 20_043]);
        assert!(states[0].drained());
    }

    #[test]
    fn fifo_capacity_backpressure() {
        let (_, mut st, _, _) = setup(IdxKind::InLaneRead);
        for r in 0..8 {
            assert!(st.can_push_addr(3));
            st.push_addr(3, r);
        }
        assert!(!st.can_push_addr(3), "FIFO holds 8 entries");
    }

    #[test]
    fn data_buffer_reservation_limits_inflight() {
        let (mut srf, mut st, p, _) = setup(IdxKind::InLaneRead);
        for r in 0..8 {
            st.push_addr(0, r);
        }
        let mut states = [st];
        let mut traffic = SrfTraffic::default();
        let mut rr = 0;
        // Never tick arrivals: in-flight + data accumulate to buf_cap = 8,
        // then issuing must stop.
        for now in 0..32 {
            service_indexed(
                &mut states,
                &mut srf,
                now,
                &p,
                &mut rr,
                &mut traffic,
                &mut Tracer::Null,
            );
        }
        assert_eq!(traffic.inlane_words, 8);
    }

    #[test]
    fn inlane_write_commits_to_srf() {
        let (mut srf, _, p, m) = setup(IdxKind::InLaneRead);
        let range = SrfRange {
            base: 100,
            words_per_bank: 256,
        };
        let b = StreamBinding::whole(range, 2, 128);
        let mut st = IdxState::new(b, IdxKind::InLaneWrite, 8, &m);
        st.push_write(5, 3, vec![77, 88]);
        let mut states = [st];
        run_cycles(&mut states, &mut srf, &p, 0, 3);
        assert_eq!(srf.read(5, 106), 77);
        assert_eq!(srf.read(5, 107), 88);
        assert!(states[0].drained());
    }

    #[test]
    fn crosslane_read_routes_to_owning_bank() {
        let (mut srf, _, p, m) = setup(IdxKind::InLaneRead);
        let range = SrfRange {
            base: 0,
            words_per_bank: 4096,
        };
        let b = StreamBinding::whole(range, 1, 32768);
        let mut st = IdxState::new(b, IdxKind::CrossLaneRead, 8, &m);
        // Lane 0 asks for global record 13 -> bank 5, offset 1.
        st.push_addr(0, 13);
        let mut states = [st];
        let t = run_cycles(&mut states, &mut srf, &p, 0, 8);
        assert_eq!(t.crosslane_words, 1);
        assert_eq!(states[0].pop_data(0), 50_001);
    }

    #[test]
    fn crosslane_bank_port_contention() {
        let (mut srf, _, p, m) = setup(IdxKind::InLaneRead);
        let range = SrfRange {
            base: 0,
            words_per_bank: 4096,
        };
        let b = StreamBinding::whole(range, 1, 32768);
        let mut st = IdxState::new(b, IdxKind::CrossLaneRead, 8, &m);
        // All 8 lanes request records in bank 0 (records ≡ 0 mod 8) at
        // different sub-arrays — the single network port serializes them.
        for lane in 0..8 {
            st.push_addr(lane, (lane as u32) * 8 * 512);
        }
        let mut states = [st];
        let mut traffic = SrfTraffic::default();
        let mut rr = 0;
        service_indexed(
            &mut states,
            &mut srf,
            0,
            &p,
            &mut rr,
            &mut traffic,
            &mut Tracer::Null,
        );
        assert_eq!(traffic.crosslane_words, 1, "one port per bank per cycle");
        for now in 1..8 {
            service_indexed(
                &mut states,
                &mut srf,
                now,
                &p,
                &mut rr,
                &mut traffic,
                &mut Tracer::Null,
            );
        }
        assert_eq!(traffic.crosslane_words, 8);
    }

    #[test]
    fn comm_priority_delays_crosslane_returns() {
        let (mut srf, _, p, m) = setup(IdxKind::InLaneRead);
        let range = SrfRange {
            base: 0,
            words_per_bank: 4096,
        };
        let b = StreamBinding::whole(range, 1, 32768);
        let mut st = IdxState::new(b, IdxKind::CrossLaneRead, 8, &m);
        st.push_addr(0, 9);
        let mut states = [st];
        let mut traffic = SrfTraffic::default();
        let mut rr = 0;
        // Issue proceeds even while explicit comm owns the data network:
        // the index network is dedicated.
        service_indexed(
            &mut states,
            &mut srf,
            0,
            &p,
            &mut rr,
            &mut traffic,
            &mut Tracer::Null,
        );
        assert_eq!(traffic.crosslane_words, 1);
        // The return waits for a free network slot: zero budget keeps the
        // data queued past its latency; one slot delivers it.
        let mut none = 0usize;
        states[0].tick_arrivals_budgeted(100, &mut none);
        assert!(!states[0].can_pop_data(0));
        let mut one = 1usize;
        states[0].tick_arrivals_budgeted(100, &mut one);
        assert!(states[0].can_pop_data(0));
        assert_eq!(one, 0);
    }

    #[test]
    fn crosslane_and_inlane_share_subarrays() {
        let (mut srf, _, p, m) = setup(IdxKind::InLaneRead);
        let range = SrfRange {
            base: 0,
            words_per_bank: 4096,
        };
        let b = StreamBinding::whole(range, 1, 32768);
        let mut inl = IdxState::new(b, IdxKind::InLaneRead, 8, &m);
        let mut xl = IdxState::new(b, IdxKind::CrossLaneRead, 8, &m);
        // Lane 0 in-lane reads offset 3 (sub-array 0 of bank 0); lane 1
        // cross-lane reads record 8 -> bank 0 offset 1 (also sub-array 0).
        inl.push_addr(0, 3);
        xl.push_addr(1, 8);
        let mut states = [inl, xl];
        let mut traffic = SrfTraffic::default();
        let mut rr = 0;
        service_indexed(
            &mut states,
            &mut srf,
            0,
            &p,
            &mut rr,
            &mut traffic,
            &mut Tracer::Null,
        );
        assert_eq!(traffic.inlane_words, 1);
        assert_eq!(
            traffic.crosslane_words, 0,
            "cross-lane loses the sub-array to the in-lane access"
        );
        service_indexed(
            &mut states,
            &mut srf,
            1,
            &p,
            &mut rr,
            &mut traffic,
            &mut Tracer::Null,
        );
        assert_eq!(traffic.crosslane_words, 1);
    }
}
