//! Machine snapshot format and structural diffing (DESIGN.md §12).
//!
//! [`crate::Machine::save_state`] serializes the complete dynamic
//! architectural state into the frame defined by [`isrf_core::snap`]:
//!
//! ```text
//! "ISRFSNAP" | version u32 | payload | fnv1a-64 hash
//! ```
//!
//! The payload is a named-section list (count, then per section its name,
//! length, and bytes):
//!
//! | section   | contents |
//! |-----------|----------|
//! | `meta`    | config + program fingerprints, engine, quiescence flag, cycle counter, SRF-port debt, cumulative stats |
//! | `scratch` | per-lane scratchpad words |
//! | `filled`  | per-bank SRF intervals known to hold data |
//! | `pending` | the live-transfer slab (op index + pending load fills) |
//! | `srf`     | allocator high-water mark + every bank word |
//! | `mem`     | nested sections from `isrf_mem`: `sys` (credits, in-flight slab, ready heap, traffic), `data` (touched memory chunks), `cache` (tag/valid/dirty/LRU arrays, when configured) |
//! | `run`     | the paused sequencer loop: dependence state, kernel cursor, and the engine-neutral half of the in-flight `KernelRun` (stream buffers, address FIFOs, arbitration state) |
//! | `kctx`    | engine-specific in-flight iteration contexts of the `KernelRun` (tape result ring, or interpreter context queue); empty when no kernel is mid-flight |
//!
//! Every field is little-endian and fixed-width (`f64` by IEEE-754 bit
//! pattern), so re-serializing a decoded snapshot is byte-identical and
//! snapshots of identical architectural state compare equal as raw bytes.
//! That property is what [`diff_snapshots`] — and the first-divergence
//! bisector built on it in `isrf-check` — relies on.

use isrf_core::snap::{self, SnapError};

/// One structural difference between two snapshots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotDiff {
    /// Slash-separated path of section names from the payload root, e.g.
    /// `"srf"` or `"mem/data/c0"`.
    pub path: String,
    /// What differs at that path.
    pub detail: String,
}

impl std::fmt::Display for SnapshotDiff {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.path, self.detail)
    }
}

/// Cap on reported differences: past this the diff is noise, not signal.
const MAX_DIFFS: usize = 64;

/// Structurally compare two snapshot frames, recursing through nested
/// named sections and reporting, for each differing leaf, the first
/// differing byte and its word index.
///
/// Returns an empty vector when the snapshots are byte-identical. At most
/// 64 differences are reported.
///
/// # Errors
///
/// Any [`SnapError`] from either frame (corruption, version mismatch).
pub fn diff_snapshots(a: &[u8], b: &[u8]) -> Result<Vec<SnapshotDiff>, SnapError> {
    let pa = snap::unframe(a)?;
    let pb = snap::unframe(b)?;
    let mut out = Vec::new();
    diff_section_bytes("", pa, pb, &mut out);
    Ok(out)
}

/// Recurse into `a` vs `b` at section path `path`.
fn diff_section_bytes(path: &str, a: &[u8], b: &[u8], out: &mut Vec<SnapshotDiff>) {
    if out.len() >= MAX_DIFFS || a == b {
        return;
    }
    // Recurse when BOTH sides parse as section lists with the same names
    // in the same order; otherwise report the leaf-level byte difference.
    if let (Some(sa), Some(sb)) = (snap::try_read_sections(a), snap::try_read_sections(b)) {
        let names_match = sa.len() == sb.len() && sa.iter().zip(&sb).all(|(x, y)| x.name == y.name);
        if names_match {
            for (x, y) in sa.iter().zip(&sb) {
                let sub = if path.is_empty() {
                    x.name.clone()
                } else {
                    format!("{path}/{}", x.name)
                };
                diff_section_bytes(&sub, &x.bytes, &y.bytes, out);
            }
            return;
        }
        out.push(SnapshotDiff {
            path: display_path(path),
            detail: format!(
                "section structure differs: [{}] vs [{}]",
                sa.iter()
                    .map(|s| s.name.as_str())
                    .collect::<Vec<_>>()
                    .join(", "),
                sb.iter()
                    .map(|s| s.name.as_str())
                    .collect::<Vec<_>>()
                    .join(", "),
            ),
        });
        return;
    }
    let detail = match a.iter().zip(b).position(|(x, y)| x != y) {
        Some(off) => format!(
            "first differing byte at offset {off} (word {}): {:#04x} vs {:#04x} ({} vs {} bytes)",
            off / 4,
            a[off],
            b[off],
            a.len(),
            b.len()
        ),
        None => format!("length differs: {} vs {} bytes", a.len(), b.len()),
    };
    out.push(SnapshotDiff {
        path: display_path(path),
        detail,
    });
}

fn display_path(path: &str) -> String {
    if path.is_empty() {
        "(payload)".to_string()
    } else {
        path.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isrf_core::snap::{write_sections, Enc};

    fn framed(sections: &[(&str, Vec<u8>)]) -> Vec<u8> {
        let mut e = Enc::new();
        write_sections(&mut e, sections);
        snap::frame(&e.into_bytes())
    }

    #[test]
    fn identical_snapshots_diff_empty() {
        let s = framed(&[("a", vec![1, 2, 3]), ("b", vec![4])]);
        assert!(diff_snapshots(&s, &s).unwrap().is_empty());
    }

    #[test]
    fn leaf_difference_is_localized() {
        let a = framed(&[("srf", vec![0; 16]), ("mem", vec![7; 8])]);
        let mut srf2 = vec![0; 16];
        srf2[9] = 5;
        let b = framed(&[("srf", srf2), ("mem", vec![7; 8])]);
        let diffs = diff_snapshots(&a, &b).unwrap();
        assert_eq!(diffs.len(), 1);
        assert_eq!(diffs[0].path, "srf");
        assert!(diffs[0].detail.contains("offset 9"));
        assert!(diffs[0].detail.contains("word 2"));
    }

    #[test]
    fn nested_sections_recurse() {
        let mut inner_a = Enc::new();
        write_sections(&mut inner_a, &[("c0", vec![1, 2]), ("c1", vec![3, 4])]);
        let mut inner_b = Enc::new();
        write_sections(&mut inner_b, &[("c0", vec![1, 2]), ("c1", vec![3, 9])]);
        let a = framed(&[("mem", inner_a.into_bytes())]);
        let b = framed(&[("mem", inner_b.into_bytes())]);
        let diffs = diff_snapshots(&a, &b).unwrap();
        assert_eq!(diffs.len(), 1);
        assert_eq!(diffs[0].path, "mem/c1");
    }

    #[test]
    fn corrupt_frame_errors() {
        let s = framed(&[("a", vec![1])]);
        let mut bad = s.clone();
        let n = bad.len();
        bad[n - 1] ^= 0xff;
        assert!(diff_snapshots(&s, &bad).is_err());
    }
}
