//! Cycle-level functional + timing simulator of an indexed-SRF stream
//! processor.
//!
//! This crate is the paper's primary artifact rebuilt in Rust: an
//! Imagine-style stream processor whose stream register file supports
//! explicitly indexed access — in-lane and cross-lane — alongside the
//! conventional wide sequential access.
//!
//! Module map (bottom-up):
//!
//! * [`srf`] — banked, sub-arrayed SRF storage with record-interleaved
//!   stream layout.
//! * [`stream`] — runtime stream-buffer state for sequential and
//!   conditional streams.
//! * [`indexed`] — address FIFOs, record expansion, two-stage arbitration
//!   and cross-lane routing (Sections 4.2–4.5).
//! * [`exec`] — lock-step SIMD execution of modulo-scheduled kernels,
//!   functional and cycle-timed.
//! * [`program`] — stream-level programs (loads/gathers, kernels,
//!   stores/scatters with explicit dependences).
//! * [`machine`] — the top-level machine: runs programs, overlaps memory
//!   with kernels, and attributes every cycle to the Figure 12 breakdown.
//! * [`snapshot`] — the cycle-granular snapshot format
//!   ([`Machine::save_state`] / [`Machine::restore_state`]) and the
//!   structural snapshot diff used by the first-divergence bisector.
//! * [`verify`] — the static-verification interface: a
//!   [`ProgramVerifier`] installed on a machine checks programs before
//!   they are simulated (the analyzer itself lives in `isrf-verify`).
//!
//! # Example: the paper's table-lookup kernel end to end
//!
//! ```
//! use std::sync::Arc;
//! use isrf_core::config::{ConfigName, MachineConfig};
//! use isrf_kernel::ir::{KernelBuilder, StreamKind};
//! use isrf_kernel::sched::{schedule, SchedParams};
//! use isrf_mem::AddrPattern;
//! use isrf_sim::machine::Machine;
//! use isrf_sim::program::StreamProgram;
//!
//! let cfg = MachineConfig::preset(ConfigName::Isrf4);
//! let mut machine = Machine::new(cfg.clone())?;
//!
//! // out[i] = in[i] + LUT[in[i]]
//! let mut b = KernelBuilder::new("lookup");
//! let s_in = b.stream("in", StreamKind::SeqIn);
//! let s_lut = b.stream("LUT", StreamKind::IdxInRead);
//! let s_out = b.stream("out", StreamKind::SeqOut);
//! let a = b.seq_read(s_in);
//! let v = b.idx_load(s_lut, a);
//! let c = b.add(a, v);
//! b.seq_write(s_out, c);
//! let kernel = Arc::new(b.build()?);
//! let sched = schedule(&kernel, &SchedParams::from_machine(&cfg))?;
//!
//! // Memory layout: a 256-entry table replicated per lane, and 64 inputs.
//! let lut = machine.alloc_stream(1, 256 * 8);
//! let input = machine.alloc_stream(1, 64);
//! let output = machine.alloc_stream(1, 64);
//! for i in 0..256u32 {
//!     for lane in 0..8 {
//!         machine.mem_mut().memory_mut().write(i * 8 + lane, 1000 + i);
//!     }
//! }
//! for i in 0..64u32 {
//!     machine.mem_mut().memory_mut().write(4096 + i, i % 256);
//! }
//!
//! let mut p = StreamProgram::new();
//! let l1 = p.load(AddrPattern::contiguous(0, 256 * 8), lut, false, &[]);
//! let l2 = p.load(AddrPattern::contiguous(4096, 64), input, false, &[]);
//! let k = p.kernel(Arc::clone(&kernel), sched, vec![input, lut, output], 8, &[l1, l2]);
//! p.store(output, AddrPattern::contiguous(8192, 64), false, &[k]);
//!
//! let stats = machine.run(&p);
//! assert!(stats.cycles > 0);
//! assert_eq!(machine.mem().memory().read(8192), 0 + 1000);
//! assert_eq!(machine.mem().memory().read(8192 + 9), 9 + 1009);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exec;
pub mod indexed;
pub mod machine;
pub mod program;
pub mod snapshot;
pub mod srf;
pub mod stream;
pub mod tape;
pub mod verify;

pub use exec::{ExecEngine, ExecScratch, KernelRun, Phase};
pub use indexed::{
    service_indexed, topology_extra_latency, topology_issue_budget, IdxKind, IdxParams, IdxState,
};
pub use machine::Machine;
pub use program::{ProgOp, ProgOpId, StreamProgram};
pub use snapshot::{diff_snapshots, SnapshotDiff};
pub use srf::{Srf, SrfRange};
pub use stream::StreamBinding;
pub use tape::{cached_tape, tape_cache_stats, CompiledTape};
pub use verify::{Diagnostic, ProgramVerifier, VerifyEnv, VerifyError, VerifyPolicy};
