//! SIMD kernel execution: functional + timing.
//!
//! A [`KernelRun`] executes one kernel invocation: all clusters run the
//! modulo-scheduled loop in lock-step under a single sequencer (as in
//! Imagine), with `ceil(span/II)` iterations in flight. Each machine cycle
//! the run:
//!
//! 1. lands arrived indexed data into stream buffers,
//! 2. performs stage-1 SRF port arbitration (one sequential stream *or*
//!    all indexed streams, round-robin among requesters; memory transfers
//!    pre-empt),
//! 3. attempts to fire every op scheduled at the current kernel cycle for
//!    every in-flight iteration. If *any* lane of *any* op cannot proceed —
//!    stream buffer empty/full, address FIFO full, indexed data not yet
//!    returned, conditional-stream coordination — the whole machine stalls
//!    for the cycle (`SRF stall`), and the port keeps servicing buffers in
//!    the background.
//!
//! After the last iteration fires, output buffers and indexed write FIFOs
//! drain ("flush"), which the machine accounts as kernel overhead along
//! with software-pipeline fill/drain.

use std::collections::VecDeque;
use std::sync::Arc;

use isrf_core::config::MachineConfig;
use isrf_core::snap::{Dec, Enc, SnapError};
use isrf_core::stats::SrfTraffic;
use isrf_core::{word, Word};
use isrf_kernel::ir::{Kernel, Opcode, StreamKind};
use isrf_kernel::sched::Schedule;

use isrf_trace::{StallReason, TraceEvent, Tracer};

use crate::indexed::{service_indexed, IdxKind, IdxParams, IdxState};
use crate::srf::Srf;
use crate::stream::{CondInState, CondOutState, SeqInState, SeqOutState, StreamBinding};
use crate::tape::{cached_tape, rv, src_word, CompiledTape, MicroKind, MicroOp, RSrc, NO_DST};

/// Which execution path a [`KernelRun`] uses for its kernel cycles.
///
/// Both engines implement identical stall/arbitration semantics; the tape
/// engine executes a pre-compiled flat micro-op program
/// ([`crate::tape::CompiledTape`]) instead of re-walking the kernel DAG
/// every cycle. Select before the first tick of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecEngine {
    /// Compiled flat-tape execution (the default).
    Tape,
    /// The retained DAG-walking interpreter — the triage fallback, and the
    /// default when the `interp` feature is enabled.
    Interp,
}

impl Default for ExecEngine {
    fn default() -> Self {
        if cfg!(feature = "interp") {
            ExecEngine::Interp
        } else {
            ExecEngine::Tape
        }
    }
}

/// Per-slot runtime state.
#[derive(Debug)]
enum SlotState {
    SeqIn(SeqInState),
    SeqOut(SeqOutState),
    CondIn(CondInState),
    /// Per-lane conditional substreams share the sequential-input state;
    /// only the pop condition and the network cost differ.
    CondLaneIn(SeqInState),
    CondOut(CondOutState),
    /// Index into `KernelRun::idx_states`.
    Idx(usize),
}

/// Reusable buffers for the kernel hot loop, owned by the machine and
/// threaded through [`KernelRun::tick`] so back-to-back kernel
/// invocations (and every cycle within one) recycle their allocations
/// instead of growing fresh `Vec`s.
#[derive(Debug, Default)]
pub struct ExecScratch {
    /// `(iteration, op)` pairs firing this cycle.
    firing: Vec<(u64, usize)>,
    /// Per-lane results of the op being committed.
    vals: Vec<Word>,
    /// Retired iteration contexts awaiting reuse (re-zeroed on reissue).
    ctx_pool: Vec<Vec<Word>>,
    /// Stage-1 arbitration requester list.
    requesters: Vec<usize>,
}

/// What a [`KernelRun::tick`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// The kernel advanced one cycle of its schedule.
    Advanced,
    /// The kernel stalled on an SRF condition.
    Stalled,
    /// All iterations fired; output buffers are draining.
    Flushing,
    /// Everything (including drains) is complete.
    Done,
}

/// One kernel invocation in progress.
#[derive(Debug)]
pub struct KernelRun {
    kernel: Arc<Kernel>,
    sched: Arc<Schedule>,
    iters: u64,
    lanes: usize,
    m_words: usize,
    seq_latency: u64,
    slots: Vec<SlotState>,
    idx_states: Vec<IdxState>,
    idx_params: Option<IdxParams>,
    /// Kernel-local cycle (advances only on non-stall cycles).
    t: u64,
    ops_by_slot: Vec<Vec<usize>>,
    /// Value contexts for in-flight iterations: `ctxs[j - ctx_base]` holds
    /// `ops × lanes` words.
    ctx_base: u64,
    ctxs: VecDeque<Vec<Word>>,
    max_dist: u32,
    comm_busy_prev: bool,
    /// Per-lane staging for conditional-stream distribution within a cycle.
    cond_scratch: Vec<Word>,
    engine: ExecEngine,
    /// Compiled micro-op program (tape engine; compiled lazily on first
    /// tick unless pre-set by the machine's per-dispatch memo).
    tape: Option<Arc<CompiledTape>>,
    /// Flat context ring of the tape engine: `depth` rows of
    /// `n_ctx x lanes` words, indexed by iteration modulo `depth`.
    ring: Vec<Word>,
    /// First iteration whose ring row has not been zeroed yet.
    ring_next_zero: u64,
    rr_grant: usize,
    rr_idx: usize,
    /// Cycles in which the schedule advanced.
    pub advance_cycles: u64,
    /// Cycles stalled on SRF conditions.
    pub stall_cycles: u64,
    /// Consecutive stall cycles (deadlock watchdog).
    consecutive_stalls: u64,
    /// Cycles spent draining outputs after the last fire.
    pub flush_cycles: u64,
}

impl KernelRun {
    /// Bind `kernel` (already scheduled) to machine streams and prepare to
    /// execute `iters` iterations per cluster.
    ///
    /// # Panics
    ///
    /// Panics if `bindings.len()` differs from the kernel's stream count,
    /// if an indexed stream is used on a machine without indexed-SRF
    /// support, or if an indexed *write* binding has multi-word records
    /// (write addresses are word-granular).
    pub fn new(
        cfg: &MachineConfig,
        kernel: Arc<Kernel>,
        sched: Arc<Schedule>,
        bindings: &[StreamBinding],
        iters: u64,
    ) -> Self {
        assert_eq!(
            bindings.len(),
            kernel.streams.len(),
            "kernel `{}` declares {} streams, got {} bindings",
            kernel.name,
            kernel.streams.len(),
            bindings.len()
        );
        let lanes = cfg.lanes;
        let cap = cfg.srf.stream_buffer_words;
        let mut slots = Vec::new();
        let mut idx_states = Vec::new();
        for (decl, b) in kernel.streams.iter().zip(bindings) {
            let state = match decl.kind {
                StreamKind::SeqIn => SlotState::SeqIn(SeqInState::new(*b, lanes, cap)),
                StreamKind::SeqOut => SlotState::SeqOut(SeqOutState::new(*b, lanes, cap)),
                StreamKind::CondIn => SlotState::CondIn(CondInState::new(*b, lanes, cap)),
                StreamKind::CondLaneIn => SlotState::CondLaneIn(SeqInState::new(*b, lanes, cap)),
                StreamKind::CondOut => SlotState::CondOut(CondOutState::new(*b, lanes, cap)),
                StreamKind::IdxInRead | StreamKind::IdxInWrite | StreamKind::IdxCrossRead => {
                    let kind = match decl.kind {
                        StreamKind::IdxInRead => IdxKind::InLaneRead,
                        StreamKind::IdxInWrite => IdxKind::InLaneWrite,
                        _ => IdxKind::CrossLaneRead,
                    };
                    if kind == IdxKind::InLaneWrite {
                        assert_eq!(
                            b.record_words, 1,
                            "indexed write streams use word-granular addresses"
                        );
                    }
                    idx_states.push(IdxState::new(*b, kind, lanes, cfg));
                    SlotState::Idx(idx_states.len() - 1)
                }
            };
            slots.push(state);
        }
        let mut ops_by_slot = vec![Vec::new(); sched.span as usize];
        for (i, &s) in sched.slots.iter().enumerate() {
            ops_by_slot[s as usize].push(i);
        }
        let max_dist = kernel
            .ops
            .iter()
            .flat_map(|o| o.operands.iter().map(|p| p.distance))
            .max()
            .unwrap_or(0);
        KernelRun {
            iters,
            lanes,
            m_words: cfg.srf.words_per_seq_access,
            seq_latency: cfg.srf.seq_latency as u64,
            slots,
            idx_states,
            idx_params: cfg
                .srf
                .indexed
                .as_ref()
                .map(|_| IdxParams::from_machine(cfg)),
            t: 0,
            ops_by_slot,
            ctx_base: 0,
            ctxs: VecDeque::new(),
            max_dist,
            comm_busy_prev: false,
            cond_scratch: vec![0; lanes],
            engine: ExecEngine::default(),
            tape: None,
            ring: Vec::new(),
            ring_next_zero: 0,
            rr_grant: 0,
            rr_idx: 0,
            advance_cycles: 0,
            stall_cycles: 0,
            consecutive_stalls: 0,
            flush_cycles: 0,
            kernel,
            sched,
        }
    }

    /// The schedule this run executes.
    pub fn schedule(&self) -> &Schedule {
        &self.sched
    }

    /// The engine this run executes with.
    pub fn engine(&self) -> ExecEngine {
        self.engine
    }

    /// Select the execution engine. Must be called before the first tick:
    /// the engines keep their iteration contexts in different structures,
    /// so switching mid-run loses in-flight values.
    pub fn set_engine(&mut self, engine: ExecEngine) {
        self.engine = engine;
    }

    /// Install a pre-compiled tape (skipping the lazy per-tick lookup) and
    /// size the context ring for it. Also selects the tape engine.
    pub(crate) fn set_tape(&mut self, tape: Arc<CompiledTape>) {
        self.engine = ExecEngine::Tape;
        self.ring.clear();
        self.ring.resize(tape.ring_words(), 0);
        // Rows for iterations `0..depth` start zeroed by the resize.
        self.ring_next_zero = tape.depth as u64;
        self.tape = Some(tape);
    }

    /// Iterations per cluster.
    pub fn iters(&self) -> u64 {
        self.iters
    }

    /// Serialize the dynamic state of an in-flight invocation: counters,
    /// per-slot stream states, indexed streams, and the engine's iteration
    /// contexts (tape ring or interpreter context queue). Static structure
    /// (kernel, schedule, bindings, slot layout) is reconstructed from the
    /// program on restore.
    pub(crate) fn encode_state(&self, e: &mut Enc) {
        e.u64(self.t);
        e.u64(self.advance_cycles);
        e.u64(self.stall_cycles);
        e.u64(self.consecutive_stalls);
        e.u64(self.flush_cycles);
        e.usize(self.rr_grant);
        e.usize(self.rr_idx);
        e.bool(self.comm_busy_prev);
        e.usize(self.slots.len());
        for slot in &self.slots {
            match slot {
                SlotState::SeqIn(s) => {
                    e.u8(0);
                    s.encode_state(e);
                }
                SlotState::SeqOut(s) => {
                    e.u8(1);
                    s.encode_state(e);
                }
                SlotState::CondIn(s) => {
                    e.u8(2);
                    s.encode_state(e);
                }
                SlotState::CondLaneIn(s) => {
                    e.u8(3);
                    s.encode_state(e);
                }
                SlotState::CondOut(s) => {
                    e.u8(4);
                    s.encode_state(e);
                }
                SlotState::Idx(i) => {
                    e.u8(5);
                    e.usize(*i);
                }
            }
        }
        e.usize(self.idx_states.len());
        for s in &self.idx_states {
            s.encode_state(e);
        }
    }

    /// Serialize the engine-specific iteration contexts (the tape's flat
    /// context ring or the interpreter's per-iteration context queue).
    /// Kept separate from [`KernelRun::encode_state`] so cross-engine
    /// state comparison can skip exactly this representation-dependent
    /// part.
    pub(crate) fn encode_ctx(&self, e: &mut Enc) {
        match self.engine {
            ExecEngine::Tape => {
                e.u8(0);
                e.usize(self.ring.len());
                for &w in &self.ring {
                    e.u32(w);
                }
                e.u64(self.ring_next_zero);
            }
            ExecEngine::Interp => {
                e.u8(1);
                e.u64(self.ctx_base);
                e.usize(self.ctxs.len());
                for ctx in &self.ctxs {
                    e.usize(ctx.len());
                    for &w in ctx {
                        e.u32(w);
                    }
                }
            }
        }
    }

    /// Overwrite the dynamic state of a freshly constructed run from
    /// [`KernelRun::encode_state`] bytes. The run must already have been
    /// built from the same kernel/schedule/bindings and placed on the same
    /// engine ([`KernelRun::set_tape`] or [`KernelRun::set_engine`]).
    pub(crate) fn decode_state(&mut self, d: &mut Dec) -> Result<(), SnapError> {
        self.t = d.u64()?;
        self.advance_cycles = d.u64()?;
        self.stall_cycles = d.u64()?;
        self.consecutive_stalls = d.u64()?;
        self.flush_cycles = d.u64()?;
        self.rr_grant = d.usize()?;
        self.rr_idx = d.usize()?;
        self.comm_busy_prev = d.bool()?;
        let n_slots = d.usize()?;
        if n_slots != self.slots.len() {
            return Err(SnapError::Mismatch(format!(
                "kernel slot count {n_slots} != {}",
                self.slots.len()
            )));
        }
        for slot in &mut self.slots {
            let tag = d.u8()?;
            match (tag, slot) {
                (0, SlotState::SeqIn(s)) => s.decode_state(d)?,
                (1, SlotState::SeqOut(s)) => s.decode_state(d)?,
                (2, SlotState::CondIn(s)) => s.decode_state(d)?,
                (3, SlotState::CondLaneIn(s)) => s.decode_state(d)?,
                (4, SlotState::CondOut(s)) => s.decode_state(d)?,
                (5, SlotState::Idx(i)) => {
                    let got = d.usize()?;
                    if got != *i {
                        return Err(SnapError::Mismatch(format!(
                            "indexed slot points at stream {got}, expected {i}"
                        )));
                    }
                }
                (t, _) => {
                    return Err(SnapError::Mismatch(format!(
                        "slot kind tag {t} does not match the program's stream declaration"
                    )));
                }
            }
        }
        let n_idx = d.usize()?;
        if n_idx != self.idx_states.len() {
            return Err(SnapError::Mismatch(format!(
                "indexed stream count {n_idx} != {}",
                self.idx_states.len()
            )));
        }
        for s in &mut self.idx_states {
            s.decode_state(d)?;
        }
        Ok(())
    }

    /// Restore the iteration contexts written by [`KernelRun::encode_ctx`].
    /// The run must already be on the matching engine.
    pub(crate) fn decode_ctx(&mut self, d: &mut Dec) -> Result<(), SnapError> {
        match (d.u8()?, self.engine) {
            (0, ExecEngine::Tape) => {
                let ring_len = d.usize()?;
                if ring_len != self.ring.len() {
                    return Err(SnapError::Mismatch(format!(
                        "tape ring length {ring_len} != {}",
                        self.ring.len()
                    )));
                }
                for w in &mut self.ring {
                    *w = d.u32()?;
                }
                self.ring_next_zero = d.u64()?;
            }
            (1, ExecEngine::Interp) => {
                self.ctx_base = d.u64()?;
                let n_ctxs = d.usize()?;
                self.ctxs.clear();
                let ctx_words = self.kernel.ops.len() * self.lanes;
                for _ in 0..n_ctxs {
                    let len = d.usize()?;
                    if len != ctx_words {
                        return Err(SnapError::Mismatch(format!(
                            "iteration context holds {len} words, expected {ctx_words}"
                        )));
                    }
                    let mut ctx = Vec::with_capacity(len);
                    for _ in 0..len {
                        ctx.push(d.u32()?);
                    }
                    self.ctxs.push_back(ctx);
                }
            }
            (t, engine) => {
                return Err(SnapError::Mismatch(format!(
                    "engine tag {t} does not match restored engine {engine:?}"
                )));
            }
        }
        Ok(())
    }

    /// Steady-state loop-body cycles (`iters × II`).
    pub fn body_cycles(&self) -> u64 {
        self.iters * self.sched.ii as u64
    }

    fn exec_end(&self) -> u64 {
        if self.iters == 0 {
            0
        } else {
            (self.iters - 1) * self.sched.ii as u64 + self.sched.completion as u64
        }
    }

    /// All iterations fired and results produced?
    pub fn exec_done(&self) -> bool {
        self.t >= self.exec_end()
    }

    /// Fully complete, including output drains?
    pub fn is_done(&self) -> bool {
        self.exec_done()
            && self.idx_states.iter().all(|s| s.drained())
            && self.slots.iter().all(|s| match s {
                SlotState::SeqOut(o) => o.drained(),
                SlotState::CondOut(o) => o.drained(),
                _ => true,
            })
    }

    /// Advance one machine cycle at time `now`. `scratch` is the machine's
    /// persistent per-lane scratchpad storage; `es` holds the reusable
    /// hot-loop buffers shared across kernel invocations.
    #[allow(clippy::too_many_arguments)]
    pub fn tick(
        &mut self,
        now: u64,
        srf: &mut Srf,
        scratch: &mut [Vec<Word>],
        es: &mut ExecScratch,
        mem_claims_port: bool,
        traffic: &mut SrfTraffic,
        tracer: &mut Tracer,
    ) -> Phase {
        // Cross-lane returns share the inter-cluster network: explicit
        // communications (last cycle's) have priority and leave fewer
        // return slots.
        let mut return_budget = if self.comm_busy_prev {
            self.lanes.saturating_sub(2)
        } else {
            self.lanes
        };
        for s in &mut self.idx_states {
            if s.kind == IdxKind::CrossLaneRead {
                s.tick_arrivals_budgeted(now, &mut return_budget);
            } else {
                s.tick_arrivals(now);
            }
        }
        if !mem_claims_port {
            self.arbitration(now, srf, traffic, tracer, &mut es.requesters);
        }
        if self.exec_done() {
            if self.is_done() {
                return Phase::Done;
            }
            self.flush_cycles += 1;
            return Phase::Flushing;
        }
        let advanced = match self.engine {
            ExecEngine::Tape => {
                if self.tape.is_none() {
                    let tape = cached_tape(&self.kernel, &self.sched, self.lanes);
                    self.set_tape(tape);
                }
                self.fire_cycle_tape(now, scratch, tracer)
            }
            ExecEngine::Interp => self.fire_cycle(now, scratch, es, tracer),
        };
        if advanced {
            self.t += 1;
            self.advance_cycles += 1;
            self.consecutive_stalls = 0;
            Phase::Advanced
        } else {
            self.stall_cycles += 1;
            self.consecutive_stalls += 1;
            assert!(
                self.consecutive_stalls < 1_000_000,
                "kernel `{}` stalled for 1M consecutive cycles — likely an                  indexed stream needs more outstanding records per iteration                  than its address FIFO + stream buffer can hold; split the                  accesses across more indexed streams",
                self.kernel.name
            );
            Phase::Stalled
        }
    }

    /// Stage-1 arbitration: one sequential/conditional stream or all
    /// indexed streams get the port this cycle.
    fn arbitration(
        &mut self,
        now: u64,
        srf: &mut Srf,
        traffic: &mut SrfTraffic,
        tracer: &mut Tracer,
        requesters: &mut Vec<usize>,
    ) {
        let flush = self.exec_done();
        let block = self.lanes * self.m_words;
        let idx_group = self.slots.len();
        requesters.clear();
        for (i, s) in self.slots.iter().enumerate() {
            let wants = match s {
                SlotState::SeqIn(st) | SlotState::CondLaneIn(st) => st.wants_grant(),
                SlotState::SeqOut(st) => st.wants_grant(self.m_words, flush),
                SlotState::CondIn(st) => st.wants_grant(),
                SlotState::CondOut(st) => st.wants_grant(block, flush),
                SlotState::Idx(_) => false,
            };
            if wants {
                requesters.push(i);
            }
        }
        if self.idx_states.iter().any(|s| s.pending_addresses()) {
            requesters.push(idx_group);
        }
        if requesters.is_empty() {
            return;
        }
        let winner = *requesters
            .iter()
            .find(|&&r| r >= self.rr_grant)
            .unwrap_or(&requesters[0]);
        self.rr_grant = (winner + 1) % (self.slots.len() + 1);
        if winner == idx_group {
            if tracer.enabled() {
                tracer.emit(now, TraceEvent::IdxGroupGrant);
            }
            let p = self.idx_params.expect("indexed streams imply indexed SRF");
            service_indexed(
                &mut self.idx_states,
                srf,
                now,
                &p,
                &mut self.rr_idx,
                traffic,
                tracer,
            );
        } else {
            let moved = match &mut self.slots[winner] {
                SlotState::SeqIn(st) | SlotState::CondLaneIn(st) => {
                    st.grant(srf, self.m_words, now, self.seq_latency)
                }
                SlotState::SeqOut(st) => st.grant(srf, self.m_words, flush),
                SlotState::CondIn(st) => st.grant(srf, block, now, self.seq_latency),
                SlotState::CondOut(st) => st.grant(srf, block, flush),
                SlotState::Idx(_) => unreachable!("idx slots never request individually"),
            };
            traffic.seq_words += moved;
            if tracer.enabled() {
                tracer.emit(
                    now,
                    TraceEvent::SeqGrant {
                        slot: winner as u8,
                        words: moved as u16,
                    },
                );
            }
        }
    }

    /// Collect the `(iteration, op)` pairs scheduled for kernel cycle `t`
    /// into `out` (cleared first).
    fn fill_firing(&self, out: &mut Vec<(u64, usize)>) {
        out.clear();
        let ii = self.sched.ii as u64;
        let span = self.sched.span as u64;
        let t = self.t;
        let j_hi = (t / ii).min(self.iters.saturating_sub(1));
        let j_lo = if t >= span { (t - span) / ii + 1 } else { 0 };
        for j in j_lo..=j_hi {
            let slot = t - j * ii;
            if slot < span {
                for &op in &self.ops_by_slot[slot as usize] {
                    out.push((j, op));
                }
            }
        }
    }

    fn ensure_ctx(&mut self, j: u64, pool: &mut Vec<Vec<Word>>) {
        let ctx_words = self.kernel.ops.len() * self.lanes;
        while self.ctx_base + (self.ctxs.len() as u64) <= j {
            // Recycled buffers must be re-zeroed: `resolve` reads slots of
            // ops that never committed a value as 0.
            let mut buf = pool.pop().unwrap_or_default();
            buf.clear();
            buf.resize(ctx_words, 0);
            self.ctxs.push_back(buf);
        }
        // Retire contexts no active iteration can still reference.
        let ii = self.sched.ii as u64;
        let span = self.sched.span as u64;
        let oldest_active = if self.t >= span {
            (self.t - span) / ii + 1
        } else {
            0
        };
        let keep_from = oldest_active.saturating_sub(self.max_dist as u64 + 1);
        while self.ctx_base < keep_from && self.ctxs.len() > 1 {
            pool.push(self.ctxs.pop_front().expect("checked non-empty"));
            self.ctx_base += 1;
        }
    }

    #[inline]
    fn ctx_value(&self, j: u64, op: usize, lane: usize) -> Word {
        let idx = (j - self.ctx_base) as usize;
        self.ctxs[idx][op * self.lanes + lane]
    }

    /// Resolve an operand for iteration `j`, lane `lane`.
    fn resolve(&self, j: u64, operand: &isrf_kernel::ir::Operand, lane: usize) -> Word {
        let d = operand.distance as u64;
        if d > j {
            return operand.init;
        }
        let pj = j - d;
        if pj < self.ctx_base {
            return operand.init; // retired far-past context (distance misuse)
        }
        // Same-cycle Free producers may not be committed yet during checks;
        // they are pure, so compute directly.
        let producer = &self.kernel.ops[operand.value.index()];
        match producer.opcode {
            Opcode::Const(w) => w,
            Opcode::LaneId => lane as Word,
            Opcode::LaneCount => self.lanes as Word,
            Opcode::IterId => pj as Word,
            _ => self.ctx_value(pj, operand.value.index(), lane),
        }
    }

    /// Find the first op firing this cycle that cannot proceed, along with
    /// why. `None` means every op can fire. The distinction between a
    /// *starved* sequential input (its stream buffer is empty) and one
    /// merely waiting out SRF access *latency* (words granted but not yet
    /// arrived) is what stall attribution reports downstream.
    fn first_blocker(&self, firing: &[(u64, usize)], now: u64) -> Option<(u8, StallReason)> {
        for &(j, opi) in firing {
            let op = &self.kernel.ops[opi];
            match op.opcode {
                Opcode::SeqRead(s) => {
                    let SlotState::SeqIn(st) = &self.slots[s.0 as usize] else {
                        unreachable!("validated kind");
                    };
                    for lane in 0..self.lanes {
                        if !st.can_pop(lane, now) && !st.lane_done(lane) {
                            let reason = if st.buffered_words(lane) == 0 {
                                StallReason::SeqInStarved
                            } else {
                                StallReason::SeqInLatency
                            };
                            return Some((s.0, reason));
                        }
                    }
                }
                Opcode::SeqWrite(s) => {
                    let SlotState::SeqOut(st) = &self.slots[s.0 as usize] else {
                        unreachable!();
                    };
                    if (0..self.lanes).any(|l| !st.can_push(l)) {
                        return Some((s.0, StallReason::SeqOutFull));
                    }
                }
                Opcode::CondLaneRead(s) => {
                    let SlotState::CondLaneIn(st) = &self.slots[s.0 as usize] else {
                        unreachable!();
                    };
                    for lane in 0..self.lanes {
                        let cond = word::as_bool(self.resolve(j, &op.operands[0], lane));
                        if cond && !st.can_pop(lane, now) && !st.lane_done(lane) {
                            let reason = if st.buffered_words(lane) == 0 {
                                StallReason::SeqInStarved
                            } else {
                                StallReason::SeqInLatency
                            };
                            return Some((s.0, reason));
                        }
                    }
                }
                Opcode::CondRead(s) => {
                    let SlotState::CondIn(st) = &self.slots[s.0 as usize] else {
                        unreachable!();
                    };
                    let k: usize = (0..self.lanes)
                        .filter(|&l| word::as_bool(self.resolve(j, &op.operands[0], l)))
                        .count();
                    let k_eff = k.min(st.remaining_words() as usize);
                    if !st.can_pop(k_eff, now) {
                        return Some((s.0, StallReason::CondInStarved));
                    }
                }
                Opcode::CondWrite(s) => {
                    let SlotState::CondOut(st) = &self.slots[s.0 as usize] else {
                        unreachable!();
                    };
                    let k: usize = (0..self.lanes)
                        .filter(|&l| word::as_bool(self.resolve(j, &op.operands[0], l)))
                        .count();
                    if !st.can_push(k) {
                        return Some((s.0, StallReason::CondOutFull));
                    }
                }
                Opcode::IdxAddr(s) | Opcode::IdxWrite(s) => {
                    let SlotState::Idx(i) = self.slots[s.0 as usize] else {
                        unreachable!();
                    };
                    if (0..self.lanes).any(|l| !self.idx_states[i].can_push_addr(l)) {
                        return Some((s.0, StallReason::AddrFifoFull));
                    }
                }
                Opcode::IdxRead(s) => {
                    let SlotState::Idx(i) = self.slots[s.0 as usize] else {
                        unreachable!();
                    };
                    if (0..self.lanes).any(|l| !self.idx_states[i].can_pop_data(l)) {
                        return Some((s.0, StallReason::IdxDataNotReady));
                    }
                }
                _ => {}
            }
        }
        None
    }

    /// Fire all ops of this kernel cycle; returns false (and changes
    /// nothing) when a stall condition exists.
    fn fire_cycle(
        &mut self,
        now: u64,
        scratch: &mut [Vec<Word>],
        es: &mut ExecScratch,
        tracer: &mut Tracer,
    ) -> bool {
        let ExecScratch {
            firing,
            vals,
            ctx_pool,
            ..
        } = es;
        self.fill_firing(firing);
        firing.sort_unstable();
        for &(j, _) in firing.iter() {
            self.ensure_ctx(j, ctx_pool);
        }
        if let Some((slot, reason)) = self.first_blocker(firing, now) {
            if tracer.enabled() {
                tracer.emit(now, TraceEvent::KernelStall { slot, reason });
            }
            return false;
        }
        // Borrow the op list through the shared kernel handle so per-op
        // execution needs no `Op` clone.
        let kernel = Arc::clone(&self.kernel);
        let mut comm_busy = false;
        for &(j, opi) in firing.iter() {
            let op = &kernel.ops[opi];
            vals.clear();
            for lane in 0..self.lanes {
                vals.push(self.execute_lane(j, opi, op, lane, scratch, &mut comm_busy));
            }
            // Cross-lane ops (Comm, CondRead) need all-lane semantics;
            // handled inside execute paths below via whole-op handling.
            let idx = (j - self.ctx_base) as usize;
            for (lane, &v) in vals.iter().enumerate() {
                self.ctxs[idx][opi * self.lanes + lane] = v;
            }
        }
        self.comm_busy_prev = comm_busy;
        true
    }

    /// Execute `op` for `lane`; cross-lane ops are executed on their first
    /// lane visit and buffered.
    fn execute_lane(
        &mut self,
        j: u64,
        _opi: usize,
        op: &isrf_kernel::ir::Op,
        lane: usize,
        scratch: &mut [Vec<Word>],
        comm_busy: &mut bool,
    ) -> Word {
        use Opcode::*;
        let a = |k: usize, s: &Self| s.resolve(j, &op.operands[k], lane);
        match op.opcode {
            Const(w) => w,
            LaneId => lane as Word,
            LaneCount => self.lanes as Word,
            IterId => j as Word,
            SeqRead(s) => {
                let SlotState::SeqIn(st) = &mut self.slots[s.0 as usize] else {
                    unreachable!();
                };
                if st.lane_done(lane) {
                    0
                } else {
                    st.pop(lane)
                }
            }
            SeqWrite(s) => {
                let v = a(0, self);
                let SlotState::SeqOut(st) = &mut self.slots[s.0 as usize] else {
                    unreachable!();
                };
                st.push(lane, v);
                v
            }
            CondLaneRead(s) => {
                let cond = word::as_bool(a(0, self));
                *comm_busy = true;
                let SlotState::CondLaneIn(st) = &mut self.slots[s.0 as usize] else {
                    unreachable!();
                };
                if cond && !st.lane_done(lane) {
                    st.pop(lane)
                } else {
                    0
                }
            }
            CondRead(s) => {
                // Whole-op semantics: on the first lane, distribute.
                if lane == 0 {
                    let conds: Vec<bool> = (0..self.lanes)
                        .map(|l| word::as_bool(self.resolve(j, &op.operands[0], l)))
                        .collect();
                    let SlotState::CondIn(st) = &mut self.slots[s.0 as usize] else {
                        unreachable!();
                    };
                    let k = conds.iter().filter(|&&c| c).count();
                    let k_eff = k.min(st.remaining_words() as usize);
                    let mut words = st.pop(k_eff).into_iter();
                    for (slot, &c) in self.cond_scratch.iter_mut().zip(&conds) {
                        *slot = if c { words.next().unwrap_or(0) } else { 0 };
                    }
                    *comm_busy = true;
                }
                self.cond_scratch[lane]
            }
            CondWrite(s) => {
                if lane == 0 {
                    let pairs: Vec<(bool, Word)> = (0..self.lanes)
                        .map(|l| {
                            (
                                word::as_bool(self.resolve(j, &op.operands[0], l)),
                                self.resolve(j, &op.operands[1], l),
                            )
                        })
                        .collect();
                    let SlotState::CondOut(st) = &mut self.slots[s.0 as usize] else {
                        unreachable!();
                    };
                    let vals: Vec<Word> =
                        pairs.iter().filter(|(c, _)| *c).map(|&(_, v)| v).collect();
                    st.push(&vals);
                    *comm_busy = true;
                }
                0
            }
            IdxAddr(s) => {
                let addr = a(0, self);
                let SlotState::Idx(i) = self.slots[s.0 as usize] else {
                    unreachable!();
                };
                self.idx_states[i].push_addr(lane, addr);
                addr
            }
            IdxRead(s) => {
                let SlotState::Idx(i) = self.slots[s.0 as usize] else {
                    unreachable!();
                };
                self.idx_states[i].pop_data(lane)
            }
            IdxWrite(s) => {
                let addr = a(0, self);
                let v = a(1, self);
                let SlotState::Idx(i) = self.slots[s.0 as usize] else {
                    unreachable!();
                };
                self.idx_states[i].push_write_word(lane, addr, v);
                v
            }
            ScratchRead => {
                let addr = a(0, self) as usize % scratch[lane].len();
                scratch[lane][addr]
            }
            ScratchWrite => {
                let addr = a(0, self) as usize % scratch[lane].len();
                let v = a(1, self);
                scratch[lane][addr] = v;
                v
            }
            Comm { rotate } => {
                *comm_busy = true;
                let src = (lane as i64 + rotate as i64).rem_euclid(self.lanes as i64) as usize;
                self.resolve(j, &op.operands[0], src)
            }
            CommXor { mask } => {
                *comm_busy = true;
                let src = (lane ^ mask as usize) % self.lanes;
                self.resolve(j, &op.operands[0], src)
            }
            // Pure ALU ops.
            _ => eval_alu(op.opcode, |k, l| self.resolve(j, &op.operands[k], l), lane),
        }
    }

    /// Tape-engine counterpart of [`KernelRun::fire_cycle`]: same firing
    /// order, stall attribution and all-or-nothing semantics, but over the
    /// pre-compiled micro-op groups and the flat context ring.
    fn fire_cycle_tape(
        &mut self,
        now: u64,
        scratch: &mut [Vec<Word>],
        tracer: &mut Tracer,
    ) -> bool {
        let tape = Arc::clone(self.tape.as_ref().expect("tape engine without a tape"));
        let t = self.t;
        let ii = tape.ii;
        let span = tape.span;
        let j_hi = (t / ii).min(self.iters.saturating_sub(1));
        let j_lo = if t >= span { (t - span) / ii + 1 } else { 0 };
        // Zero the ring rows of newly-active iterations: consumers read
        // slots of not-yet-fired producers as 0, exactly like the
        // interpreter's freshly zeroed contexts. The ring is deep enough
        // (`stages + max_dist + 1` rounded up) that a reused row is fully
        // dead by the time it comes around again.
        while self.ring_next_zero <= j_hi {
            let row = (self.ring_next_zero & tape.mask) as usize * tape.row_words;
            self.ring[row..row + tape.row_words].fill(0);
            self.ring_next_zero += 1;
        }
        // Stall check in firing order: iterations ascending, op order
        // within each group. Only the precomputed checkable subset is
        // visited — pure arithmetic never blocks.
        for j in j_lo..=j_hi {
            let slot = t - j * ii;
            if slot >= span {
                continue;
            }
            let g = tape.groups[slot as usize];
            for ci in g.checks.0..g.checks.1 {
                let mop = tape.ops[tape.checks[ci as usize] as usize];
                if let Some((slot_id, reason)) = self.tape_blocker(&tape, &mop, j, now) {
                    if tracer.enabled() {
                        tracer.emit(
                            now,
                            TraceEvent::KernelStall {
                                slot: slot_id,
                                reason,
                            },
                        );
                    }
                    return false;
                }
            }
        }
        let mut comm_busy = false;
        for j in j_lo..=j_hi {
            let slot = t - j * ii;
            if slot >= span {
                continue;
            }
            let g = tape.groups[slot as usize];
            comm_busy |= g.comm_busy;
            for oi in g.ops.0..g.ops.1 {
                self.exec_tape_op(&tape, oi as usize, j, scratch);
            }
        }
        self.comm_busy_prev = comm_busy;
        true
    }

    /// Can this checkable micro-op fire for iteration `j`? Mirrors
    /// [`KernelRun::first_blocker`] per op.
    fn tape_blocker(
        &self,
        tape: &CompiledTape,
        mop: &MicroOp,
        j: u64,
        now: u64,
    ) -> Option<(u8, StallReason)> {
        match mop.kind {
            MicroKind::SeqRead { slot } => {
                let SlotState::SeqIn(st) = &self.slots[slot as usize] else {
                    unreachable!("validated kind");
                };
                for lane in 0..self.lanes {
                    if !st.can_pop(lane, now) && !st.lane_done(lane) {
                        let reason = if st.buffered_words(lane) == 0 {
                            StallReason::SeqInStarved
                        } else {
                            StallReason::SeqInLatency
                        };
                        return Some((slot, reason));
                    }
                }
                None
            }
            MicroKind::SeqWrite { slot } => {
                let SlotState::SeqOut(st) = &self.slots[slot as usize] else {
                    unreachable!();
                };
                ((0..self.lanes).any(|l| !st.can_push(l)))
                    .then_some((slot, StallReason::SeqOutFull))
            }
            MicroKind::CondLaneRead { slot } => {
                let SlotState::CondLaneIn(st) = &self.slots[slot as usize] else {
                    unreachable!();
                };
                for lane in 0..self.lanes {
                    let cond = word::as_bool(src_word(tape, &self.ring, mop.a, j, lane));
                    if cond && !st.can_pop(lane, now) && !st.lane_done(lane) {
                        let reason = if st.buffered_words(lane) == 0 {
                            StallReason::SeqInStarved
                        } else {
                            StallReason::SeqInLatency
                        };
                        return Some((slot, reason));
                    }
                }
                None
            }
            MicroKind::CondRead { slot } => {
                let SlotState::CondIn(st) = &self.slots[slot as usize] else {
                    unreachable!();
                };
                let k: usize = (0..self.lanes)
                    .filter(|&l| word::as_bool(src_word(tape, &self.ring, mop.a, j, l)))
                    .count();
                let k_eff = k.min(st.remaining_words() as usize);
                (!st.can_pop(k_eff, now)).then_some((slot, StallReason::CondInStarved))
            }
            MicroKind::CondWrite { slot } => {
                let SlotState::CondOut(st) = &self.slots[slot as usize] else {
                    unreachable!();
                };
                let k: usize = (0..self.lanes)
                    .filter(|&l| word::as_bool(src_word(tape, &self.ring, mop.a, j, l)))
                    .count();
                (!st.can_push(k)).then_some((slot, StallReason::CondOutFull))
            }
            MicroKind::IdxAddr { slot, idx } | MicroKind::IdxWrite { slot, idx } => {
                let st = &self.idx_states[idx as usize];
                ((0..self.lanes).any(|l| !st.can_push_addr(l)))
                    .then_some((slot, StallReason::AddrFifoFull))
            }
            MicroKind::IdxRead { slot, idx } => {
                let st = &self.idx_states[idx as usize];
                ((0..self.lanes).any(|l| !st.can_pop_data(l)))
                    .then_some((slot, StallReason::IdxDataNotReady))
            }
            _ => None,
        }
    }

    /// Execute one micro-op for iteration `j`, all lanes, committing
    /// results straight into the context ring.
    fn exec_tape_op(&mut self, tape: &CompiledTape, oi: usize, j: u64, scratch: &mut [Vec<Word>]) {
        let mop = tape.ops[oi];
        let lanes = self.lanes;
        // Split borrows: the ring, the slot states and the staging buffer
        // are disjoint fields.
        let slots = &mut self.slots;
        let idx_states = &mut self.idx_states;
        let ring = &mut self.ring;
        let cond_scratch = &mut self.cond_scratch;
        let dst = mop.dst;
        let dst_base = if dst == NO_DST {
            usize::MAX
        } else {
            tape.row_base(j, dst)
        };
        match mop.kind {
            MicroKind::Alu(opc) => {
                let ra = tape.rsrc(mop.a, j);
                let rb = tape.rsrc(mop.b, j);
                let rc = tape.rsrc(mop.c, j);
                // Dead pure arithmetic is dropped at compile time, so the
                // destination is always live here.
                exec_alu_lanes(opc, ring, ra, rb, rc, dst_base, lanes);
            }
            MicroKind::SeqRead { slot } => {
                let SlotState::SeqIn(st) = &mut slots[slot as usize] else {
                    unreachable!("validated kind");
                };
                for lane in 0..lanes {
                    let v = if st.lane_done(lane) { 0 } else { st.pop(lane) };
                    if dst != NO_DST {
                        ring[dst_base + lane] = v;
                    }
                }
            }
            MicroKind::SeqWrite { slot } => {
                let ra = tape.rsrc(mop.a, j);
                let SlotState::SeqOut(st) = &mut slots[slot as usize] else {
                    unreachable!();
                };
                for lane in 0..lanes {
                    let v = rv(ring, ra, lane);
                    st.push(lane, v);
                    if dst != NO_DST {
                        ring[dst_base + lane] = v;
                    }
                }
            }
            MicroKind::CondLaneRead { slot } => {
                let ra = tape.rsrc(mop.a, j);
                let SlotState::CondLaneIn(st) = &mut slots[slot as usize] else {
                    unreachable!();
                };
                for lane in 0..lanes {
                    let cond = word::as_bool(rv(ring, ra, lane));
                    let v = if cond && !st.lane_done(lane) {
                        st.pop(lane)
                    } else {
                        0
                    };
                    if dst != NO_DST {
                        ring[dst_base + lane] = v;
                    }
                }
            }
            MicroKind::CondRead { slot } => {
                let ra = tape.rsrc(mop.a, j);
                let mut k = 0usize;
                for (lane, cs) in cond_scratch.iter_mut().enumerate().take(lanes) {
                    let c = word::as_bool(rv(ring, ra, lane));
                    *cs = Word::from(c);
                    k += usize::from(c);
                }
                let SlotState::CondIn(st) = &mut slots[slot as usize] else {
                    unreachable!();
                };
                let k_eff = k.min(st.remaining_words() as usize);
                let mut words = st.pop(k_eff).into_iter();
                for lane in 0..lanes {
                    let v = if cond_scratch[lane] != 0 {
                        words.next().unwrap_or(0)
                    } else {
                        0
                    };
                    if dst != NO_DST {
                        ring[dst_base + lane] = v;
                    }
                }
            }
            MicroKind::CondWrite { slot } => {
                let ra = tape.rsrc(mop.a, j);
                let rb = tape.rsrc(mop.b, j);
                let mut k = 0usize;
                for lane in 0..lanes {
                    if word::as_bool(rv(ring, ra, lane)) {
                        cond_scratch[k] = rv(ring, rb, lane);
                        k += 1;
                    }
                }
                let SlotState::CondOut(st) = &mut slots[slot as usize] else {
                    unreachable!();
                };
                st.push(&cond_scratch[..k]);
                // The op's value is all-zero; the row was zeroed at
                // activation and this is its slot's only writer (SSA), so
                // no commit is needed.
            }
            MicroKind::IdxAddr { idx, .. } => {
                let ra = tape.rsrc(mop.a, j);
                let st = &mut idx_states[idx as usize];
                for lane in 0..lanes {
                    let addr = rv(ring, ra, lane);
                    st.push_addr(lane, addr);
                    if dst != NO_DST {
                        ring[dst_base + lane] = addr;
                    }
                }
            }
            MicroKind::IdxRead { idx, .. } => {
                let st = &mut idx_states[idx as usize];
                for lane in 0..lanes {
                    let v = st.pop_data(lane);
                    if dst != NO_DST {
                        ring[dst_base + lane] = v;
                    }
                }
            }
            MicroKind::IdxWrite { idx, .. } => {
                let ra = tape.rsrc(mop.a, j);
                let rb = tape.rsrc(mop.b, j);
                let st = &mut idx_states[idx as usize];
                for lane in 0..lanes {
                    let addr = rv(ring, ra, lane);
                    let v = rv(ring, rb, lane);
                    st.push_write_word(lane, addr, v);
                    if dst != NO_DST {
                        ring[dst_base + lane] = v;
                    }
                }
            }
            MicroKind::ScratchRead => {
                let ra = tape.rsrc(mop.a, j);
                for lane in 0..lanes {
                    let addr = rv(ring, ra, lane) as usize % scratch[lane].len();
                    let v = scratch[lane][addr];
                    if dst != NO_DST {
                        ring[dst_base + lane] = v;
                    }
                }
            }
            MicroKind::ScratchWrite => {
                let ra = tape.rsrc(mop.a, j);
                let rb = tape.rsrc(mop.b, j);
                for lane in 0..lanes {
                    let addr = rv(ring, ra, lane) as usize % scratch[lane].len();
                    let v = rv(ring, rb, lane);
                    scratch[lane][addr] = v;
                    if dst != NO_DST {
                        ring[dst_base + lane] = v;
                    }
                }
            }
            MicroKind::Comm { rotate } => {
                let ra = tape.rsrc(mop.a, j);
                for lane in 0..lanes {
                    let src_lane = (lane as i64 + rotate as i64).rem_euclid(lanes as i64) as usize;
                    let v = rv(ring, ra, src_lane);
                    if dst != NO_DST {
                        ring[dst_base + lane] = v;
                    }
                }
            }
            MicroKind::CommXor { mask } => {
                let ra = tape.rsrc(mop.a, j);
                for lane in 0..lanes {
                    let src_lane = (lane ^ mask as usize) % lanes;
                    let v = rv(ring, ra, src_lane);
                    if dst != NO_DST {
                        ring[dst_base + lane] = v;
                    }
                }
            }
        }
    }
}

/// Execute a pure ALU op across all lanes with the opcode dispatch
/// hoisted out of the per-lane loop: one match, then a tight loop per
/// opcode. Semantics mirror [`eval_alu`] exactly (wrapping `i32`
/// arithmetic, zero divisor yields 0, shift counts masked to 5 bits,
/// `f32` round-trips through the word encoding, `Select` reads only the
/// taken operand); any opcode without a dedicated loop falls back to it.
fn exec_alu_lanes(
    opc: Opcode,
    ring: &mut [Word],
    ra: RSrc,
    rb: RSrc,
    rc: RSrc,
    dst_base: usize,
    lanes: usize,
) {
    use Opcode::*;
    macro_rules! un {
        (|$a:ident| $e:expr) => {
            for lane in 0..lanes {
                let $a = rv(ring, ra, lane);
                let v = $e;
                ring[dst_base + lane] = v;
            }
        };
    }
    macro_rules! bin {
        (|$a:ident, $b:ident| $e:expr) => {
            for lane in 0..lanes {
                let $a = rv(ring, ra, lane);
                let $b = rv(ring, rb, lane);
                let v = $e;
                ring[dst_base + lane] = v;
            }
        };
    }
    macro_rules! ibin {
        (|$a:ident, $b:ident| $e:expr) => {
            bin!(|wa, wb| {
                let $a = word::as_i32(wa);
                let $b = word::as_i32(wb);
                $e
            })
        };
    }
    macro_rules! fbin {
        (|$a:ident, $b:ident| $e:expr) => {
            bin!(|wa, wb| {
                let $a = word::as_f32(wa);
                let $b = word::as_f32(wb);
                $e
            })
        };
    }
    match opc {
        Mov => un!(|a| a),
        Not => un!(|a| !a),
        Neg => un!(|a| word::from_i32(word::as_i32(a).wrapping_neg())),
        FNeg => un!(|a| word::from_f32(-word::as_f32(a))),
        IToF => un!(|a| word::from_f32(word::as_i32(a) as f32)),
        FToI => un!(|a| word::from_i32(word::as_f32(a) as i32)),
        Add => ibin!(|a, b| word::from_i32(a.wrapping_add(b))),
        Sub => ibin!(|a, b| word::from_i32(a.wrapping_sub(b))),
        Mul => ibin!(|a, b| word::from_i32(a.wrapping_mul(b))),
        Div => ibin!(|a, b| word::from_i32(if b == 0 { 0 } else { a.wrapping_div(b) })),
        Rem => ibin!(|a, b| word::from_i32(if b == 0 { 0 } else { a.wrapping_rem(b) })),
        And => bin!(|a, b| a & b),
        Or => bin!(|a, b| a | b),
        Xor => bin!(|a, b| a ^ b),
        Shl => bin!(|a, b| a.wrapping_shl(b & 31)),
        Shr => bin!(|a, b| a.wrapping_shr(b & 31)),
        Sra => bin!(|a, b| word::from_i32(word::as_i32(a).wrapping_shr(b & 31))),
        Lt => ibin!(|a, b| word::from_bool(a < b)),
        Le => ibin!(|a, b| word::from_bool(a <= b)),
        Eq => bin!(|a, b| word::from_bool(a == b)),
        Ne => bin!(|a, b| word::from_bool(a != b)),
        ULt => bin!(|a, b| word::from_bool(a < b)),
        Min => ibin!(|a, b| word::from_i32(a.min(b))),
        Max => ibin!(|a, b| word::from_i32(a.max(b))),
        FAdd => fbin!(|a, b| word::from_f32(a + b)),
        FSub => fbin!(|a, b| word::from_f32(a - b)),
        FMul => fbin!(|a, b| word::from_f32(a * b)),
        FDiv => fbin!(|a, b| word::from_f32(a / b)),
        FLt => fbin!(|a, b| word::from_bool(a < b)),
        FLe => fbin!(|a, b| word::from_bool(a <= b)),
        FEq => fbin!(|a, b| word::from_bool(a == b)),
        FMin => fbin!(|a, b| word::from_f32(a.min(b))),
        FMax => fbin!(|a, b| word::from_f32(a.max(b))),
        Select => {
            for lane in 0..lanes {
                let v = if word::as_bool(rv(ring, ra, lane)) {
                    rv(ring, rb, lane)
                } else {
                    rv(ring, rc, lane)
                };
                ring[dst_base + lane] = v;
            }
        }
        _ => {
            for lane in 0..lanes {
                let v = eval_alu(
                    opc,
                    |k, l| match k {
                        0 => rv(ring, ra, l),
                        1 => rv(ring, rb, l),
                        _ => rv(ring, rc, l),
                    },
                    lane,
                );
                ring[dst_base + lane] = v;
            }
        }
    }
}

/// Evaluate a pure ALU opcode for one lane.
fn eval_alu(opcode: Opcode, resolve: impl Fn(usize, usize) -> Word, lane: usize) -> Word {
    use Opcode::*;
    let a = || resolve(0, lane);
    let b = || resolve(1, lane);
    let ia = || word::as_i32(resolve(0, lane));
    let ib = || word::as_i32(resolve(1, lane));
    let fa = || word::as_f32(resolve(0, lane));
    let fb = || word::as_f32(resolve(1, lane));
    match opcode {
        Mov => a(),
        Not => !a(),
        Neg => word::from_i32(ia().wrapping_neg()),
        FNeg => word::from_f32(-fa()),
        IToF => word::from_f32(ia() as f32),
        FToI => word::from_i32(fa() as i32),
        Add => word::from_i32(ia().wrapping_add(ib())),
        Sub => word::from_i32(ia().wrapping_sub(ib())),
        Mul => word::from_i32(ia().wrapping_mul(ib())),
        Div => word::from_i32(if ib() == 0 {
            0
        } else {
            ia().wrapping_div(ib())
        }),
        Rem => word::from_i32(if ib() == 0 {
            0
        } else {
            ia().wrapping_rem(ib())
        }),
        And => a() & b(),
        Or => a() | b(),
        Xor => a() ^ b(),
        Shl => a().wrapping_shl(b() & 31),
        Shr => a().wrapping_shr(b() & 31),
        Sra => word::from_i32(ia().wrapping_shr(b() & 31)),
        Lt => word::from_bool(ia() < ib()),
        Le => word::from_bool(ia() <= ib()),
        Eq => word::from_bool(a() == b()),
        Ne => word::from_bool(a() != b()),
        ULt => word::from_bool(a() < b()),
        Min => word::from_i32(ia().min(ib())),
        Max => word::from_i32(ia().max(ib())),
        FAdd => word::from_f32(fa() + fb()),
        FSub => word::from_f32(fa() - fb()),
        FMul => word::from_f32(fa() * fb()),
        FDiv => word::from_f32(fa() / fb()),
        FLt => word::from_bool(fa() < fb()),
        FLe => word::from_bool(fa() <= fb()),
        FEq => word::from_bool(fa() == fb()),
        FMin => word::from_f32(fa().min(fb())),
        FMax => word::from_f32(fa().max(fb())),
        Select => {
            if word::as_bool(resolve(0, lane)) {
                resolve(1, lane)
            } else {
                resolve(2, lane)
            }
        }
        _ => unreachable!("non-ALU opcode {opcode:?} reached eval_alu"),
    }
}
