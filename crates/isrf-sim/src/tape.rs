//! Kernel tape compilation: lower a scheduled kernel once into a flat,
//! pre-resolved micro-op program for the zero-graph-walk hot loop.
//!
//! The interpreter in [`crate::exec`] re-walks the kernel DAG every cycle:
//! each operand resolve re-reads the producing op, matches on its opcode
//! to special-case the Free producers (`Const`/`LaneId`/`LaneCount`/
//! `IterId`), and indexes a `VecDeque` of per-iteration contexts. This
//! module performs all of that decision-making once per `(Kernel,
//! Schedule, lanes)` triple:
//!
//! * operand sources fold to `Src` values — immediates, lane/iteration
//!   specializations, or direct dense context-slot reads;
//! * ops are grouped by schedule slot (`Group`), with the stall-check
//!   subset precomputed so pure arithmetic is never rescanned on the
//!   blocker path;
//! * context slots are densely renumbered (only values actually read
//!   through the context get a slot) and live in a flat power-of-two ring
//!   indexed by iteration, replacing the `VecDeque<Vec<Word>>`;
//! * Free ops and dead pure arithmetic are dropped from the tape entirely
//!   (consumers never read their context slots, they never stall, and
//!   they never touch `comm_busy`, so dropping them is unobservable).
//!
//! Execution of the tape lives in [`crate::exec`] (`fire_cycle_tape`);
//! stall and arbitration semantics are byte-identical to the interpreter —
//! the `interp` feature flips the default engine back for triage, and the
//! differential proptest in `tests/proptest_engines.rs` holds the two
//! paths equal.
//!
//! Compiled tapes are cached process-wide, keyed by content hash
//! ([`isrf_kernel::hash`]), so repeated invocations across strip-mined
//! iterations, machine instances and sweep points compile once.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use isrf_core::Word;
use isrf_kernel::hash::{kernel_hash, schedule_hash};
use isrf_kernel::ir::{Kernel, OpClass, Opcode, Operand};
use isrf_kernel::sched::Schedule;

/// Sentinel context slot for ops whose value is never read.
pub(crate) const NO_DST: u16 = u16::MAX;

/// A pre-resolved operand source.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Src {
    /// Compile-time constant (`Const`, `LaneCount`, folded inits).
    Imm(Word),
    /// The lane index (`LaneId` producer at distance 0).
    Lane,
    /// The iteration id `j - d`, or `init` while `j < d`.
    Iter { d: u32, init: Word },
    /// A constant once `j >= d`, `init` before (carried `Const`/`LaneCount`).
    CarriedImm { d: u32, init: Word, val: Word },
    /// The lane index once `j >= d`, `init` before (carried `LaneId`).
    CarriedLane { d: u32, init: Word },
    /// Context slot of the current iteration (distance 0).
    Ctx0 { slot: u16 },
    /// Context slot of iteration `j - d`, or `init` while `j < d`.
    Ctx { slot: u16, d: u32, init: Word },
}

/// Source fully resolved for one `(op, iteration)`: what remains is a
/// per-lane read.
#[derive(Debug, Clone, Copy)]
pub(crate) enum RSrc {
    /// A constant for every lane.
    Imm(Word),
    /// The lane index itself.
    Lane,
    /// `ring[base + lane]`.
    Base(usize),
}

/// Kind of one tape micro-op (the single dispatch point of the hot loop).
#[derive(Debug, Clone, Copy)]
pub(crate) enum MicroKind {
    /// Pure arithmetic, evaluated by `eval_alu`.
    Alu(Opcode),
    /// Sequential stream pop, all lanes.
    SeqRead { slot: u8 },
    /// Sequential stream push, all lanes.
    SeqWrite { slot: u8 },
    /// Per-lane conditional pop (network-routed substreams).
    CondLaneRead { slot: u8 },
    /// Whole-op conditional distribute-pop.
    CondRead { slot: u8 },
    /// Whole-op conditional compacting push.
    CondWrite { slot: u8 },
    /// Indexed address issue; `idx` indexes `KernelRun::idx_states`.
    IdxAddr { slot: u8, idx: u16 },
    /// Indexed data pop paired with an earlier `IdxAddr`.
    IdxRead { slot: u8, idx: u16 },
    /// Indexed write (address + value).
    IdxWrite { slot: u8, idx: u16 },
    /// Cluster scratchpad read.
    ScratchRead,
    /// Cluster scratchpad write.
    ScratchWrite,
    /// Static rotation permutation over the inter-cluster network.
    Comm { rotate: i32 },
    /// Static XOR (butterfly) permutation.
    CommXor { mask: u32 },
}

/// One pre-resolved micro-op. Unused sources are `Src::Imm(0)`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct MicroOp {
    pub kind: MicroKind,
    /// Dense context slot receiving the per-lane results ([`NO_DST`] when
    /// no live op reads this value).
    pub dst: u16,
    pub a: Src,
    pub b: Src,
    pub c: Src,
}

/// Micro-ops of one schedule slot.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Group {
    /// `[start, end)` range into [`CompiledTape::ops`].
    pub ops: (u32, u32),
    /// `[start, end)` range into [`CompiledTape::checks`]: the ops that
    /// can stall, in firing order.
    pub checks: (u32, u32),
    /// Firing this group occupies the inter-cluster network (conditional
    /// stream coordination or explicit communication).
    pub comm_busy: bool,
}

/// A kernel lowered against one schedule for one lane count: flat
/// micro-ops grouped by kernel cycle, plus the context-ring geometry.
///
/// Produced by [`cached_tape`]; executed by `KernelRun` when its engine is
/// `ExecEngine::Tape`.
#[derive(Debug)]
pub struct CompiledTape {
    /// Initiation interval (copied from the schedule for locality).
    pub(crate) ii: u64,
    /// Schedule span (slots per iteration).
    pub(crate) span: u64,
    /// One group per schedule slot (`span` entries; possibly empty).
    pub(crate) groups: Vec<Group>,
    /// All live micro-ops, slot-major, op order within a slot.
    pub(crate) ops: Vec<MicroOp>,
    /// Indices into `ops` for the stall-checkable subset, slot-major.
    pub(crate) checks: Vec<u32>,
    /// Context ring depth in iterations (power of two).
    pub(crate) depth: usize,
    /// `depth - 1`, for modulo indexing by iteration number.
    pub(crate) mask: u64,
    /// Words per ring row: `n_ctx * lanes`.
    pub(crate) row_words: usize,
    /// Lane count the tape was specialized for.
    pub(crate) lanes: usize,
}

impl CompiledTape {
    /// Total ring capacity in words (`depth * row_words`).
    pub(crate) fn ring_words(&self) -> usize {
        self.depth * self.row_words
    }

    /// Resolve `s` for iteration `j` down to a per-lane read.
    #[inline]
    pub(crate) fn rsrc(&self, s: Src, j: u64) -> RSrc {
        match s {
            Src::Imm(w) => RSrc::Imm(w),
            Src::Lane => RSrc::Lane,
            Src::Iter { d, init } => {
                if u64::from(d) > j {
                    RSrc::Imm(init)
                } else {
                    RSrc::Imm((j - u64::from(d)) as Word)
                }
            }
            Src::CarriedImm { d, init, val } => {
                RSrc::Imm(if u64::from(d) > j { init } else { val })
            }
            Src::CarriedLane { d, init } => {
                if u64::from(d) > j {
                    RSrc::Imm(init)
                } else {
                    RSrc::Lane
                }
            }
            Src::Ctx0 { slot } => {
                RSrc::Base((j & self.mask) as usize * self.row_words + slot as usize * self.lanes)
            }
            Src::Ctx { slot, d, init } => {
                if u64::from(d) > j {
                    RSrc::Imm(init)
                } else {
                    let pj = j - u64::from(d);
                    RSrc::Base(
                        (pj & self.mask) as usize * self.row_words + slot as usize * self.lanes,
                    )
                }
            }
        }
    }

    /// Ring offset of `(iteration j, context slot)` lane 0.
    #[inline]
    pub(crate) fn row_base(&self, j: u64, slot: u16) -> usize {
        (j & self.mask) as usize * self.row_words + slot as usize * self.lanes
    }
}

/// Read one lane of a resolved source.
#[inline]
pub(crate) fn rv(ring: &[Word], r: RSrc, lane: usize) -> Word {
    match r {
        RSrc::Imm(w) => w,
        RSrc::Lane => lane as Word,
        RSrc::Base(b) => ring[b + lane],
    }
}

/// Full resolution of one source for `(iteration, lane)` — the stall-check
/// path, which is not hot enough to warrant the per-op [`RSrc`] hoist.
#[inline]
pub(crate) fn src_word(tape: &CompiledTape, ring: &[Word], s: Src, j: u64, lane: usize) -> Word {
    rv(ring, tape.rsrc(s, j), lane)
}

fn is_free(opc: Opcode) -> bool {
    matches!(opc.class(), OpClass::Free)
}

/// Ops `eval_alu` handles: pure, no machine-state side effects, safe to
/// drop when dead. (`ScratchRead` is also pure but touches the scratch
/// length — kept so out-of-range behavior matches the interpreter.)
fn is_pure_alu(opc: Opcode) -> bool {
    matches!(opc.class(), OpClass::Alu | OpClass::Divider)
}

fn compile_src(kernel: &Kernel, ctx_slot: &[u16], lanes: usize, o: &Operand) -> Src {
    let producer = kernel.ops[o.value.index()].opcode;
    let d = o.distance;
    match producer {
        Opcode::Const(w) => {
            if d == 0 {
                Src::Imm(w)
            } else {
                Src::CarriedImm {
                    d,
                    init: o.init,
                    val: w,
                }
            }
        }
        Opcode::LaneCount => {
            if d == 0 {
                Src::Imm(lanes as Word)
            } else {
                Src::CarriedImm {
                    d,
                    init: o.init,
                    val: lanes as Word,
                }
            }
        }
        Opcode::LaneId => {
            if d == 0 {
                Src::Lane
            } else {
                Src::CarriedLane { d, init: o.init }
            }
        }
        Opcode::IterId => Src::Iter { d, init: o.init },
        _ => {
            let slot = ctx_slot[o.value.index()];
            debug_assert_ne!(slot, NO_DST, "ctx-read of an unslotted value");
            if d == 0 {
                Src::Ctx0 { slot }
            } else {
                Src::Ctx {
                    slot,
                    d,
                    init: o.init,
                }
            }
        }
    }
}

/// Lower `kernel`/`sched` for `lanes` lanes. See the module docs for the
/// transformation; [`cached_tape`] is the memoized entry point.
pub(crate) fn compile(kernel: &Kernel, sched: &Schedule, lanes: usize) -> CompiledTape {
    let n_ops = kernel.ops.len();

    // Which values are read through the context? Free producers are
    // resolved inline by consumers (folded into `Src`), and the operand of
    // an `IdxRead` is a scheduling token that is never resolved at all.
    let mut ctx_read = vec![false; n_ops];
    for op in &kernel.ops {
        if matches!(op.opcode, Opcode::IdxRead(_)) {
            continue;
        }
        for o in &op.operands {
            if !is_free(kernel.ops[o.value.index()].opcode) {
                ctx_read[o.value.index()] = true;
            }
        }
    }

    // Dense context slots, in op order.
    let mut ctx_slot = vec![NO_DST; n_ops];
    let mut n_ctx: u16 = 0;
    for i in 0..n_ops {
        if ctx_read[i] {
            ctx_slot[i] = n_ctx;
            n_ctx += 1;
        }
    }

    // Live ops: everything except Free ops (consumers never read their
    // context, they never stall, they never set comm_busy) and dead pure
    // arithmetic.
    let live = |i: usize| {
        let opc = kernel.ops[i].opcode;
        !is_free(opc) && (ctx_read[i] || !is_pure_alu(opc))
    };

    // Group by schedule slot, preserving op order within a slot — the
    // interpreter fires `(iteration, op)` pairs sorted by op index, and
    // stall attribution depends on that order.
    let span = sched.span as usize;
    let mut by_slot: Vec<Vec<usize>> = vec![Vec::new(); span];
    for (i, &s) in sched.slots.iter().enumerate() {
        if live(i) {
            by_slot[s as usize].push(i);
        }
    }

    // Indexed streams are numbered by declaration order, exactly as
    // `KernelRun::new` builds its `idx_states`.
    let mut idx_of_stream = vec![u16::MAX; kernel.streams.len()];
    let mut n_idx: u16 = 0;
    for (si, decl) in kernel.streams.iter().enumerate() {
        if decl.kind.is_indexed() {
            idx_of_stream[si] = n_idx;
            n_idx += 1;
        }
    }

    let mut ops: Vec<MicroOp> = Vec::new();
    let mut checks: Vec<u32> = Vec::new();
    let mut groups: Vec<Group> = Vec::with_capacity(span);
    for slot_ops in &by_slot {
        let ops_start = ops.len() as u32;
        let checks_start = checks.len() as u32;
        let mut comm_busy = false;
        for &i in slot_ops {
            let op = &kernel.ops[i];
            let src = |k: usize| compile_src(kernel, &ctx_slot, lanes, &op.operands[k]);
            let zero = Src::Imm(0);
            use Opcode::*;
            let (kind, a, b, c) = match op.opcode {
                SeqRead(s) => (MicroKind::SeqRead { slot: s.0 }, zero, zero, zero),
                SeqWrite(s) => (MicroKind::SeqWrite { slot: s.0 }, src(0), zero, zero),
                CondLaneRead(s) => (MicroKind::CondLaneRead { slot: s.0 }, src(0), zero, zero),
                CondRead(s) => (MicroKind::CondRead { slot: s.0 }, src(0), zero, zero),
                CondWrite(s) => (MicroKind::CondWrite { slot: s.0 }, src(0), src(1), zero),
                IdxAddr(s) => (
                    MicroKind::IdxAddr {
                        slot: s.0,
                        idx: idx_of_stream[s.0 as usize],
                    },
                    src(0),
                    zero,
                    zero,
                ),
                IdxRead(s) => (
                    MicroKind::IdxRead {
                        slot: s.0,
                        idx: idx_of_stream[s.0 as usize],
                    },
                    zero,
                    zero,
                    zero,
                ),
                IdxWrite(s) => (
                    MicroKind::IdxWrite {
                        slot: s.0,
                        idx: idx_of_stream[s.0 as usize],
                    },
                    src(0),
                    src(1),
                    zero,
                ),
                ScratchRead => (MicroKind::ScratchRead, src(0), zero, zero),
                ScratchWrite => (MicroKind::ScratchWrite, src(0), src(1), zero),
                Comm { rotate } => (MicroKind::Comm { rotate }, src(0), zero, zero),
                CommXor { mask } => (MicroKind::CommXor { mask }, src(0), zero, zero),
                opc => {
                    debug_assert!(is_pure_alu(opc));
                    let n = op.operands.len();
                    (
                        MicroKind::Alu(opc),
                        if n > 0 { src(0) } else { zero },
                        if n > 1 { src(1) } else { zero },
                        if n > 2 { src(2) } else { zero },
                    )
                }
            };
            let needs_check = matches!(
                kind,
                MicroKind::SeqRead { .. }
                    | MicroKind::SeqWrite { .. }
                    | MicroKind::CondLaneRead { .. }
                    | MicroKind::CondRead { .. }
                    | MicroKind::CondWrite { .. }
                    | MicroKind::IdxAddr { .. }
                    | MicroKind::IdxRead { .. }
                    | MicroKind::IdxWrite { .. }
            );
            comm_busy |= matches!(
                kind,
                MicroKind::CondLaneRead { .. }
                    | MicroKind::CondRead { .. }
                    | MicroKind::CondWrite { .. }
                    | MicroKind::Comm { .. }
                    | MicroKind::CommXor { .. }
            );
            if needs_check {
                checks.push(ops.len() as u32);
            }
            ops.push(MicroOp {
                kind,
                dst: ctx_slot[i],
                a,
                b,
                c,
            });
        }
        groups.push(Group {
            ops: (ops_start, ops.len() as u32),
            checks: (checks_start, checks.len() as u32),
            comm_busy,
        });
    }

    // Ring depth: at most `stages` iterations are in flight, and consumers
    // reach back `max_dist` iterations, so `stages + max_dist` rows are
    // simultaneously readable. One spare row plus rounding to a power of
    // two means a row is always fully dead by the time it is re-zeroed for
    // a new iteration.
    let max_dist = kernel
        .ops
        .iter()
        .flat_map(|o| o.operands.iter().map(|p| p.distance))
        .max()
        .unwrap_or(0);
    let depth = u64::from(sched.stages() + max_dist + 1).next_power_of_two() as usize;

    CompiledTape {
        ii: u64::from(sched.ii),
        span: u64::from(sched.span),
        groups,
        ops,
        checks,
        depth,
        mask: depth as u64 - 1,
        row_words: usize::from(n_ctx) * lanes,
        lanes,
    }
}

/// Compile (or fetch) the tape for `(kernel, sched, lanes)`.
///
/// The cache is process-wide and keyed by content hash, so structurally
/// identical kernels — across machine instances, strip-mined invocations
/// and parallel sweep workers — compile exactly once. The lock is not held
/// during compilation; a rare racing duplicate is dropped on insert.
pub fn cached_tape(kernel: &Kernel, sched: &Schedule, lanes: usize) -> Arc<CompiledTape> {
    #[allow(clippy::type_complexity)]
    static CACHE: OnceLock<Mutex<BTreeMap<(u128, u128, usize), Arc<CompiledTape>>>> =
        OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(BTreeMap::new()));
    let key = (kernel_hash(kernel), schedule_hash(sched), lanes);
    if let Some(hit) = cache.lock().unwrap().get(&key) {
        TAPE_CACHE_HITS.fetch_add(1, Ordering::Relaxed);
        return Arc::clone(hit);
    }
    TAPE_CACHE_MISSES.fetch_add(1, Ordering::Relaxed);
    let tape = Arc::new(compile(kernel, sched, lanes));
    let mut guard = cache.lock().unwrap();
    Arc::clone(guard.entry(key).or_insert(tape))
}

static TAPE_CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static TAPE_CACHE_MISSES: AtomicU64 = AtomicU64::new(0);

/// Process-lifetime `(hits, misses)` of the [`cached_tape`] memo, for
/// export by long-running services (a lost insert race still counts as a
/// miss — the compilation work really happened).
pub fn tape_cache_stats() -> (u64, u64) {
    (
        TAPE_CACHE_HITS.load(Ordering::Relaxed),
        TAPE_CACHE_MISSES.load(Ordering::Relaxed),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use isrf_core::config::{ConfigName, MachineConfig};
    use isrf_kernel::ir::{KernelBuilder, StreamKind};
    use isrf_kernel::sched::{schedule, SchedParams};

    fn lowered() -> (Kernel, Schedule) {
        let mut b = KernelBuilder::new("t");
        let i = b.stream("in", StreamKind::SeqIn);
        let o = b.stream("out", StreamKind::SeqOut);
        let x = b.seq_read(i);
        let k = b.constant(7);
        let y = b.mul(x, k);
        let dead = b.add(x, k);
        let _ = dead; // dead pure op: dropped from the tape
        b.seq_write(o, y);
        let kernel = b.build().unwrap();
        let p = SchedParams::from_machine(&MachineConfig::preset(ConfigName::Base));
        let s = schedule(&kernel, &p).unwrap();
        (kernel, s)
    }

    #[test]
    fn folds_constants_and_drops_dead_ops() {
        let (kernel, sched) = lowered();
        let tape = compile(&kernel, &sched, 8);
        // Live: seq_read, mul, seq_write. Dropped: const (Free), dead add.
        assert_eq!(tape.ops.len(), 3);
        // Ctx slots: only seq_read and mul results are read.
        assert_eq!(tape.row_words, 2 * 8);
        let mul = tape
            .ops
            .iter()
            .find(|m| matches!(m.kind, MicroKind::Alu(Opcode::Mul)))
            .expect("mul survives");
        assert!(matches!(mul.a, Src::Ctx0 { .. }));
        assert!(matches!(mul.b, Src::Imm(7)));
        // Stall checks cover exactly the two stream ops.
        assert_eq!(tape.checks.len(), 2);
        assert!(tape.depth.is_power_of_two());
        assert!(tape.depth as u32 >= sched.stages());
    }

    #[test]
    fn cached_tape_is_shared_by_content() {
        let (kernel, sched) = lowered();
        let a = cached_tape(&kernel, &sched, 8);
        let mut renamed = kernel.clone();
        renamed.name = "other".into();
        let b = cached_tape(&renamed, &sched, 8);
        assert!(Arc::ptr_eq(&a, &b), "name does not affect the content key");
        let c = cached_tape(&kernel, &sched, 4);
        assert!(!Arc::ptr_eq(&a, &c), "lane count is part of the key");
    }
}
