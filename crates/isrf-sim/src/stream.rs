//! Runtime state of machine-level streams during a kernel invocation.
//!
//! Each kernel stream slot is bound to an SRF-resident stream described by
//! a [`StreamBinding`]. During execution the binding gets a per-invocation
//! runtime state holding the stream buffers (8 words per lane per stream in
//! the paper), the per-stream address FIFOs of indexed streams, and the
//! cursors tracking progress through the stream.
//!
//! Sequential streams exchange `m` words per lane with the SRF on each
//! port grant; clusters pop/push one word per access. Conditional streams
//! keep a *global* buffer because elements are distributed dynamically to
//! whichever lanes assert their condition. Indexed streams keep per-lane
//! address FIFOs whose heads are expanded to single-word accesses by the
//! hardware counters described in Section 4.4.

use std::collections::VecDeque;

use isrf_core::snap::{Dec, Enc, SnapError};
use isrf_core::Word;

use crate::srf::{Srf, SrfRange};

/// A machine-level stream: an SRF range plus interpretation.
///
/// A binding may *window* its range: the `k`-th stream record maps to
/// range record `start_record + (k / run_records) * stride_records +
/// (k % run_records)` — contiguous runs of `run_records` records separated
/// by `stride_records`. This expresses the strided access patterns stream
/// machines support in their stream descriptors (e.g. the half-input
/// streams of a constant-geometry FFT stage).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamBinding {
    /// SRF range holding the stream data.
    pub range: SrfRange,
    /// Words per record.
    pub record_words: u32,
    /// Stream length in records (sequential/conditional streams), or the
    /// number of addressable records (indexed streams).
    pub records: u32,
    /// First record of the range this stream covers (lets several
    /// sequential streams window one region, e.g. the FFT half-streams).
    pub start_record: u32,
    /// Records per contiguous run (`records` for an unwindowed stream).
    pub run_records: u32,
    /// Range records between run starts (`run_records` when unwindowed).
    pub stride_records: u32,
}

impl StreamBinding {
    /// Bind a whole range: `records` records of `record_words` starting at
    /// record 0.
    pub fn whole(range: SrfRange, record_words: u32, records: u32) -> Self {
        StreamBinding {
            range,
            record_words,
            records,
            start_record: 0,
            run_records: records.max(1),
            stride_records: records.max(1),
        }
    }

    /// Bind a strided window: `runs` runs of `run` records, run `i`
    /// starting at range record `start + i * stride`.
    pub fn windowed(
        range: SrfRange,
        record_words: u32,
        start: u32,
        run: u32,
        stride: u32,
        runs: u32,
    ) -> Self {
        // stride == 0 is a *periodic* window: every run re-reads the same
        // records (used for repeating constant streams like FFT twiddles).
        assert!(
            run > 0 && (stride == 0 || stride >= run),
            "runs must not overlap"
        );
        StreamBinding {
            range,
            record_words,
            records: run * runs,
            start_record: start,
            run_records: run,
            stride_records: stride,
        }
    }

    /// Narrow a contiguous binding to `records` starting at record
    /// `start` of the range.
    pub fn slice(&self, start: u32, records: u32) -> StreamBinding {
        let mut b = *self;
        b.start_record = start;
        b.records = records;
        b.run_records = records.max(1);
        b.stride_records = records.max(1);
        b
    }

    /// Stream length in words.
    pub fn words(&self) -> u32 {
        self.records * self.record_words
    }

    /// Range record index of the `k`-th stream record.
    pub fn absolute_record(&self, k: u32) -> u32 {
        self.start_record + (k / self.run_records) * self.stride_records + k % self.run_records
    }

    /// Stream-word index (for [`Srf::locate`]) of the `k`-th word of this
    /// binding.
    pub fn stream_word(&self, k: u32) -> u32 {
        self.absolute_record(k / self.record_words) * self.record_words + k % self.record_words
    }
}

/// Per-lane word cursor over the records a lane owns.
///
/// For an unwindowed binding with `start % lanes == 0`, lane `l` owns
/// stream records `l, l+N, l+2N, …`. Windowed bindings must keep the lane
/// pattern aligned: `lanes` must divide `start_record`, `run_records` and
/// `stride_records`, so that stream record `k` still lands in lane
/// `k % lanes` (asserted at construction).
#[derive(Debug, Clone)]
struct LaneCursor {
    /// Next stream-record index (k) this lane consumes.
    next_k: u32,
    /// Word within that record.
    next_word: u32,
    /// Words remaining for this lane.
    remaining: u32,
}

fn lane_cursors(b: &StreamBinding, lanes: usize) -> Vec<LaneCursor> {
    let n = lanes as u32;
    if b.run_records < b.records {
        // Windowed: keep record->lane assignment equal to k % lanes.
        assert!(
            b.start_record.is_multiple_of(n)
                && b.run_records.is_multiple_of(n)
                && b.stride_records.is_multiple_of(n),
            "windowed stream must be lane-aligned (start/run/stride divisible by {n})"
        );
    }
    (0..n)
        .map(|l| {
            // Lane of stream record k is absolute_record(k) % n. For
            // aligned windows this equals (start + k) % n; scan for this
            // lane's first k.
            let first = (0..n.min(b.records)).find(|&k| b.absolute_record(k) % n == l);
            match first {
                Some(f) if f < b.records => {
                    let count = (b.records - f).div_ceil(n);
                    LaneCursor {
                        next_k: f,
                        next_word: 0,
                        remaining: count * b.record_words,
                    }
                }
                _ => LaneCursor {
                    next_k: 0,
                    next_word: 0,
                    remaining: 0,
                },
            }
        })
        .collect()
}

/// Serialize a cursor set (count-prefixed for validation on decode).
fn encode_cursors(cursors: &[LaneCursor], e: &mut Enc) {
    e.usize(cursors.len());
    for c in cursors {
        e.u32(c.next_k);
        e.u32(c.next_word);
        e.u32(c.remaining);
    }
}

/// Overwrite a cursor set from [`encode_cursors`] bytes.
fn decode_cursors(cursors: &mut [LaneCursor], d: &mut Dec) -> Result<(), SnapError> {
    let n = d.usize()?;
    if n != cursors.len() {
        return Err(SnapError::Mismatch(format!(
            "lane cursor count {n} != {}",
            cursors.len()
        )));
    }
    for c in cursors {
        c.next_k = d.u32()?;
        c.next_word = d.u32()?;
        c.remaining = d.u32()?;
    }
    Ok(())
}

impl LaneCursor {
    /// Per-bank SRF offset of the next word, then advance.
    fn advance(&mut self, b: &StreamBinding, lanes: usize) -> u32 {
        debug_assert!(self.remaining > 0);
        let abs = b.absolute_record(self.next_k);
        let off = b.range.base + (abs / lanes as u32) * b.record_words + self.next_word;
        self.next_word += 1;
        if self.next_word == b.record_words {
            self.next_word = 0;
            self.next_k += lanes as u32;
        }
        self.remaining -= 1;
        off
    }
}

/// Sequential input stream state.
#[derive(Debug, Clone)]
pub struct SeqInState {
    /// The binding this state reads.
    pub binding: StreamBinding,
    cursors: Vec<LaneCursor>,
    /// Per-lane arrival queue: `(ready_cycle, word)`.
    bufs: Vec<VecDeque<(u64, Word)>>,
    buf_cap: usize,
}

impl SeqInState {
    /// Create the runtime state for `binding` on an `lanes`-lane machine.
    pub fn new(binding: StreamBinding, lanes: usize, buf_cap: usize) -> Self {
        SeqInState {
            binding,
            cursors: lane_cursors(&binding, lanes),
            bufs: vec![VecDeque::new(); lanes],
            buf_cap,
        }
    }

    /// Whether an SRF grant would make progress.
    pub fn wants_grant(&self) -> bool {
        self.cursors
            .iter()
            .zip(&self.bufs)
            .any(|(c, b)| c.remaining > 0 && b.len() < self.buf_cap)
    }

    /// Apply one SRF grant: fetch up to `m` words per lane; returns words
    /// moved (for traffic accounting).
    pub fn grant(&mut self, srf: &Srf, m: usize, now: u64, latency: u64) -> u64 {
        let mut moved = 0;
        let lanes = self.bufs.len();
        for (lane, (c, buf)) in self.cursors.iter_mut().zip(&mut self.bufs).enumerate() {
            for _ in 0..m {
                if c.remaining == 0 || buf.len() >= self.buf_cap {
                    break;
                }
                let off = c.advance(&self.binding, lanes);
                buf.push_back((now + latency, srf.read(lane, off)));
                moved += 1;
            }
        }
        moved
    }

    /// Can lane `l` pop a word at `now`?
    pub fn can_pop(&self, lane: usize, now: u64) -> bool {
        self.bufs[lane].front().is_some_and(|&(t, _)| t <= now)
    }

    /// Pop the next word of lane `l`.
    ///
    /// # Panics
    ///
    /// Panics if [`SeqInState::can_pop`] is false.
    pub fn pop(&mut self, lane: usize) -> Word {
        self.bufs[lane].pop_front().expect("pop on empty buffer").1
    }

    /// True when every word has been fetched and consumed.
    pub fn exhausted(&self) -> bool {
        self.cursors.iter().all(|c| c.remaining == 0) && self.bufs.iter().all(|b| b.is_empty())
    }

    /// True when lane `l` has no words left (fetched or buffered). Reads
    /// past the end of a lane's data return zero instead of stalling, so
    /// lanes with less data stay occupied until the last lane finishes —
    /// the load-imbalance behavior the paper describes.
    pub fn lane_done(&self, lane: usize) -> bool {
        self.cursors[lane].remaining == 0 && self.bufs[lane].is_empty()
    }

    /// Words buffered for lane `l` (ready or still in their SRF access
    /// latency) — distinguishes a starved buffer from one whose data is
    /// merely in flight when attributing stalls.
    pub fn buffered_words(&self, lane: usize) -> usize {
        self.bufs[lane].len()
    }

    /// Serialize the dynamic state (cursors and buffered words). The
    /// binding and capacities come from the constructor on decode.
    pub(crate) fn encode_state(&self, e: &mut Enc) {
        encode_cursors(&self.cursors, e);
        for b in &self.bufs {
            e.usize(b.len());
            for &(t, w) in b {
                e.u64(t);
                e.u32(w);
            }
        }
    }

    /// Overwrite the dynamic state from [`SeqInState::encode_state`] bytes.
    pub(crate) fn decode_state(&mut self, d: &mut Dec) -> Result<(), SnapError> {
        decode_cursors(&mut self.cursors, d)?;
        for b in &mut self.bufs {
            b.clear();
            let n = d.usize()?;
            for _ in 0..n {
                let t = d.u64()?;
                let w = d.u32()?;
                b.push_back((t, w));
            }
        }
        Ok(())
    }
}

/// Sequential output stream state.
#[derive(Debug, Clone)]
pub struct SeqOutState {
    /// The binding this state writes.
    pub binding: StreamBinding,
    cursors: Vec<LaneCursor>,
    bufs: Vec<VecDeque<Word>>,
    buf_cap: usize,
}

impl SeqOutState {
    /// Create the runtime state.
    pub fn new(binding: StreamBinding, lanes: usize, buf_cap: usize) -> Self {
        SeqOutState {
            binding,
            cursors: lane_cursors(&binding, lanes),
            bufs: vec![VecDeque::new(); lanes],
            buf_cap,
        }
    }

    /// Whether a grant would drain anything. When `flush` is false only
    /// full `m`-word blocks are drained (the hardware writes whole blocks);
    /// after the kernel finishes, partial blocks flush too.
    pub fn wants_grant(&self, m: usize, flush: bool) -> bool {
        self.bufs
            .iter()
            .any(|b| b.len() >= m || (flush && !b.is_empty()))
    }

    /// Apply one SRF grant: drain up to `m` words per lane into the SRF.
    pub fn grant(&mut self, srf: &mut Srf, m: usize, flush: bool) -> u64 {
        let mut moved = 0;
        let lanes = self.bufs.len();
        for (lane, (c, buf)) in self.cursors.iter_mut().zip(&mut self.bufs).enumerate() {
            if buf.len() < m && !flush {
                continue;
            }
            for _ in 0..m {
                let Some(w) = buf.pop_front() else { break };
                if c.remaining == 0 {
                    // Overproduced: the kernel wrote more than the binding
                    // holds. Drop (callers size bindings to iterations).
                    continue;
                }
                let off = c.advance(&self.binding, lanes);
                srf.write(lane, off, w);
                moved += 1;
            }
        }
        moved
    }

    /// Can lane `l` accept a word?
    pub fn can_push(&self, lane: usize) -> bool {
        self.bufs[lane].len() < self.buf_cap
    }

    /// Push a word from lane `l`'s cluster.
    pub fn push(&mut self, lane: usize, w: Word) {
        debug_assert!(self.can_push(lane));
        self.bufs[lane].push_back(w);
    }

    /// True when all buffered output has been written to the SRF.
    pub fn drained(&self) -> bool {
        self.bufs.iter().all(|b| b.is_empty())
    }

    /// Words buffered by lane `l` awaiting a drain grant.
    pub fn pending_words(&self, lane: usize) -> usize {
        self.bufs[lane].len()
    }

    /// Serialize the dynamic state (cursors and buffered words).
    pub(crate) fn encode_state(&self, e: &mut Enc) {
        encode_cursors(&self.cursors, e);
        for b in &self.bufs {
            e.usize(b.len());
            for &w in b {
                e.u32(w);
            }
        }
    }

    /// Overwrite the dynamic state from [`SeqOutState::encode_state`] bytes.
    pub(crate) fn decode_state(&mut self, d: &mut Dec) -> Result<(), SnapError> {
        decode_cursors(&mut self.cursors, d)?;
        for b in &mut self.bufs {
            b.clear();
            let n = d.usize()?;
            for _ in 0..n {
                b.push_back(d.u32()?);
            }
        }
        Ok(())
    }
}

/// Conditional input stream state (\[16\]): a single global cursor; elements
/// go to whichever lanes assert their condition, in lane order.
#[derive(Debug, Clone)]
pub struct CondInState {
    /// The binding this state reads.
    pub binding: StreamBinding,
    /// Next stream word to fetch from the SRF.
    fetch_cursor: u32,
    buf: VecDeque<(u64, Word)>,
    buf_cap: usize,
}

impl CondInState {
    /// Create the runtime state; capacity scales with lanes since the
    /// buffer is global.
    pub fn new(binding: StreamBinding, lanes: usize, per_lane_cap: usize) -> Self {
        CondInState {
            binding,
            fetch_cursor: 0,
            buf: VecDeque::new(),
            buf_cap: per_lane_cap * lanes,
        }
    }

    /// Whether an SRF grant would make progress.
    pub fn wants_grant(&self) -> bool {
        self.fetch_cursor < self.binding.words() && self.buf.len() < self.buf_cap
    }

    /// Fetch the next block of words (up to `lanes * m`) in stream order.
    pub fn grant(&mut self, srf: &Srf, block_words: usize, now: u64, latency: u64) -> u64 {
        let mut moved = 0;
        for _ in 0..block_words {
            if !self.wants_grant() {
                break;
            }
            let w = srf.read_stream_word(
                self.binding.range,
                self.binding.record_words,
                self.binding.stream_word(self.fetch_cursor),
            );
            self.buf.push_back((now + latency, w));
            self.fetch_cursor += 1;
            moved += 1;
        }
        moved
    }

    /// Are `k` words ready at `now`?
    pub fn can_pop(&self, k: usize, now: u64) -> bool {
        self.buf.len() >= k && self.buf.iter().take(k).all(|&(t, _)| t <= now)
    }

    /// Pop `k` words in stream order.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `k` words are buffered.
    pub fn pop(&mut self, k: usize) -> Vec<Word> {
        (0..k)
            .map(|_| self.buf.pop_front().expect("cond pop underflow").1)
            .collect()
    }

    /// Words of the stream not yet consumed (fetched or not).
    pub fn remaining_words(&self) -> u32 {
        self.binding.words() - self.fetch_cursor + self.buf.len() as u32
    }

    /// Serialize the dynamic state (cursor and buffered words).
    pub(crate) fn encode_state(&self, e: &mut Enc) {
        e.u32(self.fetch_cursor);
        e.usize(self.buf.len());
        for &(t, w) in &self.buf {
            e.u64(t);
            e.u32(w);
        }
    }

    /// Overwrite the dynamic state from [`CondInState::encode_state`] bytes.
    pub(crate) fn decode_state(&mut self, d: &mut Dec) -> Result<(), SnapError> {
        self.fetch_cursor = d.u32()?;
        self.buf.clear();
        let n = d.usize()?;
        for _ in 0..n {
            let t = d.u64()?;
            let w = d.u32()?;
            self.buf.push_back((t, w));
        }
        Ok(())
    }
}

/// Conditional output stream state: lanes asserting their condition append
/// in lane order; a global buffer drains to the SRF in stream order.
#[derive(Debug, Clone)]
pub struct CondOutState {
    /// The binding this state writes.
    pub binding: StreamBinding,
    write_cursor: u32,
    buf: VecDeque<Word>,
    buf_cap: usize,
}

impl CondOutState {
    /// Create the runtime state.
    pub fn new(binding: StreamBinding, lanes: usize, per_lane_cap: usize) -> Self {
        CondOutState {
            binding,
            write_cursor: 0,
            buf: VecDeque::new(),
            buf_cap: per_lane_cap * lanes,
        }
    }

    /// Room for `k` more words?
    pub fn can_push(&self, k: usize) -> bool {
        self.buf.len() + k <= self.buf_cap
    }

    /// Append `words` in order.
    pub fn push(&mut self, words: &[Word]) {
        debug_assert!(self.can_push(words.len()));
        self.buf.extend(words.iter().copied());
    }

    /// Whether a grant would drain anything.
    pub fn wants_grant(&self, block_words: usize, flush: bool) -> bool {
        self.buf.len() >= block_words || (flush && !self.buf.is_empty())
    }

    /// Drain up to a block into the SRF.
    pub fn grant(&mut self, srf: &mut Srf, block_words: usize, flush: bool) -> u64 {
        if self.buf.len() < block_words && !flush {
            return 0;
        }
        let mut moved = 0;
        for _ in 0..block_words {
            let Some(w) = self.buf.pop_front() else { break };
            if self.write_cursor >= self.binding.words() {
                continue; // overproduced; dropped
            }
            srf.write_stream_word(
                self.binding.range,
                self.binding.record_words,
                self.binding.stream_word(self.write_cursor),
                w,
            );
            self.write_cursor += 1;
            moved += 1;
        }
        moved
    }

    /// Words written to the SRF so far.
    pub fn written(&self) -> u32 {
        self.write_cursor
    }

    /// True when all buffered output has drained.
    pub fn drained(&self) -> bool {
        self.buf.is_empty()
    }

    /// Serialize the dynamic state (cursor and buffered words).
    pub(crate) fn encode_state(&self, e: &mut Enc) {
        e.u32(self.write_cursor);
        e.usize(self.buf.len());
        for &w in &self.buf {
            e.u32(w);
        }
    }

    /// Overwrite the dynamic state from [`CondOutState::encode_state`] bytes.
    pub(crate) fn decode_state(&mut self, d: &mut Dec) -> Result<(), SnapError> {
        self.write_cursor = d.u32()?;
        self.buf.clear();
        let n = d.usize()?;
        for _ in 0..n {
            self.buf.push_back(d.u32()?);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isrf_core::config::{ConfigName, MachineConfig};

    fn srf_with_stream(record_words: u32, records: u32) -> (Srf, StreamBinding) {
        let mut srf = Srf::new(&MachineConfig::preset(ConfigName::Base));
        let words = records * record_words;
        let range = srf.alloc(words.div_ceil(8).max(1) + record_words);
        let b = StreamBinding::whole(range, record_words, records);
        let data: Vec<Word> = (0..words).collect();
        srf.fill_stream(range, record_words, &data);
        (srf, b)
    }

    #[test]
    fn seq_in_pops_lane_elements_in_order() {
        let (srf, b) = srf_with_stream(1, 32);
        let mut s = SeqInState::new(b, 8, 8);
        assert!(s.wants_grant());
        s.grant(&srf, 4, 0, 0);
        // Lane 0 sees words 0, 8, 16, 24; lane 3 sees 3, 11, ...
        assert!(s.can_pop(0, 0));
        assert_eq!(s.pop(0), 0);
        assert_eq!(s.pop(0), 8);
        assert_eq!(s.pop(3), 3);
        assert_eq!(s.pop(3), 11);
    }

    #[test]
    fn seq_in_latency_delays_availability() {
        let (srf, b) = srf_with_stream(1, 8);
        let mut s = SeqInState::new(b, 8, 8);
        s.grant(&srf, 4, 10, 3);
        assert!(!s.can_pop(0, 12));
        assert!(s.can_pop(0, 13));
    }

    #[test]
    fn seq_in_respects_buffer_capacity() {
        let (srf, b) = srf_with_stream(1, 800);
        let mut s = SeqInState::new(b, 8, 8);
        let m1 = s.grant(&srf, 4, 0, 0);
        let m2 = s.grant(&srf, 4, 0, 0);
        assert_eq!(m1 + m2, 64, "two grants of 4 words x 8 lanes");
        let m3 = s.grant(&srf, 4, 0, 0);
        assert_eq!(m3, 0, "buffers are full at 8 words per lane");
        assert!(!s.wants_grant());
    }

    #[test]
    fn seq_in_exhaustion_and_tail() {
        // 10 records on 8 lanes: lanes 0 and 1 get 2 records, rest 1.
        let (srf, b) = srf_with_stream(1, 10);
        let mut s = SeqInState::new(b, 8, 8);
        while s.wants_grant() {
            s.grant(&srf, 4, 0, 0);
        }
        assert_eq!(s.pop(0), 0);
        assert_eq!(s.pop(0), 8);
        assert_eq!(s.pop(1), 1);
        assert_eq!(s.pop(1), 9);
        assert_eq!(s.pop(7), 7);
        assert!(!s.can_pop(7, 0), "lane 7 has exactly one record");
        assert!(!s.exhausted(), "lanes 2..7 still hold their word");
        for l in 2..7 {
            s.pop(l);
        }
        assert!(s.exhausted());
    }

    #[test]
    fn seq_in_records_are_lane_local() {
        let (srf, b) = srf_with_stream(4, 16);
        let mut s = SeqInState::new(b, 8, 8);
        s.grant(&srf, 4, 0, 0);
        // Lane 2 owns record 2 = words 8..12.
        assert_eq!(s.pop(2), 8);
        assert_eq!(s.pop(2), 9);
        assert_eq!(s.pop(2), 10);
        assert_eq!(s.pop(2), 11);
    }

    #[test]
    fn seq_in_start_record_windows_the_range() {
        let (srf, mut b) = srf_with_stream(1, 64);
        b.start_record = 32;
        b.records = 16;
        let mut s = SeqInState::new(b, 8, 8);
        s.grant(&srf, 4, 0, 0);
        // Record 32 belongs to lane 0 and holds word value 32.
        assert_eq!(s.pop(0), 32);
        assert_eq!(s.pop(1), 33);
    }

    #[test]
    fn seq_out_roundtrip() {
        let (mut srf, b) = srf_with_stream(1, 16);
        let mut s = SeqOutState::new(b, 8, 8);
        for lane in 0..8 {
            s.push(lane, 100 + lane as u32);
            s.push(lane, 200 + lane as u32);
        }
        assert!(!s.wants_grant(4, false), "blocks of 4 not yet full");
        assert!(s.wants_grant(4, true));
        s.grant(&mut srf, 4, true);
        assert!(s.drained());
        // Record r -> lane r%8: stream word 3 came from lane 3's first push.
        assert_eq!(srf.read_stream_word(b.range, 1, 3), 103);
        assert_eq!(srf.read_stream_word(b.range, 1, 11), 203);
    }

    #[test]
    fn seq_out_backpressure() {
        let (_, b) = srf_with_stream(1, 100);
        let mut s = SeqOutState::new(b, 8, 4);
        for _ in 0..4 {
            assert!(s.can_push(0));
            s.push(0, 1);
        }
        assert!(!s.can_push(0));
    }

    #[test]
    fn cond_in_global_order() {
        let (srf, b) = srf_with_stream(1, 16);
        let mut s = CondInState::new(b, 8, 8);
        s.grant(&srf, 32, 0, 0);
        assert!(s.can_pop(3, 0));
        assert_eq!(s.pop(3), [0, 1, 2]);
        assert_eq!(s.pop(2), [3, 4]);
        assert_eq!(s.remaining_words(), 11);
    }

    #[test]
    fn cond_out_writes_stream_order() {
        let (mut srf, b) = srf_with_stream(1, 8);
        let mut s = CondOutState::new(b, 8, 8);
        s.push(&[9, 8, 7]);
        s.grant(&mut srf, 64, true);
        assert_eq!(s.written(), 3);
        assert_eq!(srf.read_stream_word(b.range, 1, 0), 9);
        assert_eq!(srf.read_stream_word(b.range, 1, 2), 7);
        assert!(s.drained());
    }
}
