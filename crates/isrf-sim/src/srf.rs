//! SRF storage: banked, sub-arrayed, software-managed.
//!
//! The SRF holds `capacity / lanes` words per bank. Software allocates
//! *ranges* — per-bank word intervals present at the same offset in every
//! bank — and lays streams out across them.
//!
//! ## Stream layout convention
//!
//! A stream over a range stores its data **record-interleaved**: record `r`
//! lives in bank `r mod N`, at per-bank word offset
//! `base + (r / N) * record_words`. Consecutive records of one bank are
//! contiguous, so a sequential block access (`m` contiguous words per bank)
//! fetches the next `m / record_words` records of every lane at once —
//! exactly the hardware's wide single-ported access. With `record_words ==
//! 1` this is plain word interleaving.

use isrf_core::config::MachineConfig;
use isrf_core::snap::{Dec, Enc, SnapError};
use isrf_core::Word;

/// A per-bank word interval, replicated at the same offset in every bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SrfRange {
    /// Starting word offset within each bank.
    pub base: u32,
    /// Words reserved per bank.
    pub words_per_bank: u32,
}

impl SrfRange {
    /// Total capacity of the range in words across all banks.
    pub fn total_words(&self, lanes: usize) -> u32 {
        self.words_per_bank * lanes as u32
    }
}

/// Banked SRF storage with a simple bump allocator for ranges.
#[derive(Debug, Clone)]
pub struct Srf {
    lanes: usize,
    bank_words: u32,
    subarray_words: u32,
    /// `log2(subarray_words)` when it is a power of two, letting
    /// [`Srf::subarray_of`] shift instead of divide on the hot path.
    subarray_shift: Option<u32>,
    /// `data[lane][offset]`.
    data: Vec<Vec<Word>>,
    next_free: u32,
}

impl Srf {
    /// Build the SRF for a machine configuration.
    pub fn new(cfg: &MachineConfig) -> Self {
        let bank_words = cfg.srf.bank_words(cfg.lanes) as u32;
        let subarray_words = cfg.srf.subarray_words(cfg.lanes) as u32;
        Srf {
            lanes: cfg.lanes,
            bank_words,
            subarray_words,
            subarray_shift: subarray_words
                .is_power_of_two()
                .then(|| subarray_words.trailing_zeros()),
            data: vec![vec![0; bank_words as usize]; cfg.lanes],
            next_free: 0,
        }
    }

    /// Number of banks/lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Words per bank.
    pub fn bank_words(&self) -> u32 {
        self.bank_words
    }

    /// Words per sub-array.
    pub fn subarray_words(&self) -> u32 {
        self.subarray_words
    }

    /// Which sub-array a per-bank word offset falls in.
    pub fn subarray_of(&self, offset: u32) -> usize {
        match self.subarray_shift {
            Some(s) => (offset >> s) as usize,
            None => (offset / self.subarray_words) as usize,
        }
    }

    /// Number of sub-arrays per bank.
    pub fn subarrays(&self) -> usize {
        (self.bank_words / self.subarray_words) as usize
    }

    /// Allocate a range of `words_per_bank` words in every bank.
    ///
    /// # Panics
    ///
    /// Panics when the SRF is out of space — stream programs are sized by
    /// the caller (strip-mining exists precisely to make working sets fit).
    pub fn alloc(&mut self, words_per_bank: u32) -> SrfRange {
        assert!(
            self.next_free + words_per_bank <= self.bank_words,
            "SRF overflow: {} + {} > {} words per bank",
            self.next_free,
            words_per_bank,
            self.bank_words
        );
        let r = SrfRange {
            base: self.next_free,
            words_per_bank,
        };
        self.next_free += words_per_bank;
        r
    }

    /// Release all allocations (contents are preserved; ranges handed out
    /// earlier must no longer be used).
    pub fn free_all(&mut self) {
        self.next_free = 0;
    }

    /// Words per bank still unallocated.
    pub fn free_words(&self) -> u32 {
        self.bank_words - self.next_free
    }

    /// Read bank `lane` at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn read(&self, lane: usize, offset: u32) -> Word {
        self.data[lane][offset as usize]
    }

    /// Write bank `lane` at `offset`.
    #[inline]
    pub fn write(&mut self, lane: usize, offset: u32, value: Word) {
        self.data[lane][offset as usize] = value;
    }

    /// Bank and per-bank offset of stream word `w` for a stream stored
    /// record-interleaved over `range` with `record_words`-word records.
    pub fn locate(&self, range: SrfRange, record_words: u32, w: u32) -> (usize, u32) {
        let record = w / record_words;
        let within = w % record_words;
        let lane = (record as usize) % self.lanes;
        let offset = range.base + (record / self.lanes as u32) * record_words + within;
        debug_assert!(
            offset < range.base + range.words_per_bank,
            "stream word {w} overflows its range"
        );
        (lane, offset)
    }

    /// Read stream word `w` of a record-interleaved stream.
    pub fn read_stream_word(&self, range: SrfRange, record_words: u32, w: u32) -> Word {
        let (lane, off) = self.locate(range, record_words, w);
        self.read(lane, off)
    }

    /// Write stream word `w` of a record-interleaved stream.
    pub fn write_stream_word(&mut self, range: SrfRange, record_words: u32, w: u32, v: Word) {
        let (lane, off) = self.locate(range, record_words, w);
        self.write(lane, off, v);
    }

    /// Copy `data` into the range as a record-interleaved stream (used when
    /// a memory load completes).
    pub fn fill_stream(&mut self, range: SrfRange, record_words: u32, data: &[Word]) {
        for (w, &v) in data.iter().enumerate() {
            self.write_stream_word(range, record_words, w as u32, v);
        }
    }

    /// Read `words` stream words out of the range in stream order (used
    /// when a memory store is issued).
    pub fn drain_stream(&self, range: SrfRange, record_words: u32, words: u32) -> Vec<Word> {
        (0..words)
            .map(|w| self.read_stream_word(range, record_words, w))
            .collect()
    }

    /// Serialize the dynamic SRF state: bank contents and the allocator
    /// high-water mark. Geometry is recorded only for validation — the
    /// decoder's SRF must already be built from the same configuration.
    pub(crate) fn encode_state(&self, e: &mut Enc) {
        e.u32(self.next_free);
        e.usize(self.lanes);
        e.u32(self.bank_words);
        for bank in &self.data {
            for &w in bank {
                e.u32(w);
            }
        }
    }

    /// Overwrite the dynamic SRF state from [`Srf::encode_state`] bytes.
    pub(crate) fn decode_state(&mut self, d: &mut Dec) -> Result<(), SnapError> {
        let next_free = d.u32()?;
        let (lanes, bank_words) = (d.usize()?, d.u32()?);
        if (lanes, bank_words) != (self.lanes, self.bank_words) {
            return Err(SnapError::Mismatch(format!(
                "SRF geometry {lanes} lanes x {bank_words} words != {} x {}",
                self.lanes, self.bank_words
            )));
        }
        self.next_free = next_free;
        for bank in &mut self.data {
            for w in bank.iter_mut() {
                *w = d.u32()?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isrf_core::config::ConfigName;

    fn srf() -> Srf {
        Srf::new(&MachineConfig::preset(ConfigName::Isrf4))
    }

    #[test]
    fn geometry() {
        let s = srf();
        assert_eq!(s.lanes(), 8);
        assert_eq!(s.bank_words(), 4096);
        assert_eq!(s.subarray_words(), 1024);
        assert_eq!(s.subarray_of(0), 0);
        assert_eq!(s.subarray_of(1023), 0);
        assert_eq!(s.subarray_of(1024), 1);
        assert_eq!(s.subarray_of(4095), 3);
    }

    #[test]
    fn alloc_is_bump_and_bounded() {
        let mut s = srf();
        let a = s.alloc(1000);
        let b = s.alloc(3000);
        assert_eq!(a.base, 0);
        assert_eq!(b.base, 1000);
        assert_eq!(s.free_words(), 96);
        s.free_all();
        assert_eq!(s.free_words(), 4096);
    }

    #[test]
    #[should_panic(expected = "SRF overflow")]
    fn alloc_overflow_panics() {
        let mut s = srf();
        s.alloc(5000);
    }

    #[test]
    fn word_interleaved_layout() {
        let s = srf();
        let r = SrfRange {
            base: 100,
            words_per_bank: 64,
        };
        // record_words = 1: word w -> lane w % 8, offset base + w/8.
        assert_eq!(s.locate(r, 1, 0), (0, 100));
        assert_eq!(s.locate(r, 1, 7), (7, 100));
        assert_eq!(s.locate(r, 1, 8), (0, 101));
        assert_eq!(s.locate(r, 1, 17), (1, 102));
    }

    #[test]
    fn record_interleaved_layout() {
        let s = srf();
        let r = SrfRange {
            base: 0,
            words_per_bank: 64,
        };
        // 2-word records: record r -> lane r % 8.
        assert_eq!(s.locate(r, 2, 0), (0, 0));
        assert_eq!(s.locate(r, 2, 1), (0, 1));
        assert_eq!(s.locate(r, 2, 2), (1, 0));
        assert_eq!(s.locate(r, 2, 16), (0, 2));
        assert_eq!(s.locate(r, 2, 17), (0, 3));
    }

    #[test]
    fn fill_and_drain_roundtrip() {
        let mut s = srf();
        let r = s.alloc(16);
        let data: Vec<Word> = (0..100).collect();
        s.fill_stream(r, 4, &data);
        assert_eq!(s.drain_stream(r, 4, 100), data);
        // Spot-check physical placement: record 9 (words 36..40) in lane 1.
        assert_eq!(s.read(1, r.base + 4), 36);
    }

    #[test]
    fn fft_column_locality() {
        // The 2D-FFT property the ISRF version relies on: a 64x64 complex
        // array stored as 2-word records, element (row, col) = record
        // row*64+col, puts every element of column c in lane c % 8.
        let s = srf();
        let r = SrfRange {
            base: 0,
            words_per_bank: 1024,
        };
        for col in 0..64u32 {
            for row in 0..64u32 {
                let rec = row * 64 + col;
                let (lane, _) = s.locate(r, 2, rec * 2);
                assert_eq!(lane, (col % 8) as usize);
            }
        }
    }
}
