//! Sparse-workload property tests: random CSR matrices — varying
//! density, empty rows, single-column, pathological bandwidth — run
//! through the SpMV app on both execution engines and diffed
//! word-for-word against the bit-exact host reference; plus
//! snapshot/resume at a random mid-run cycle, which must reproduce the
//! uninterrupted run exactly.

use isrf_apps::spmv::{pad_of, prepare_csr, reference, Csr};
use isrf_core::config::ConfigName;
use isrf_core::word::{from_f32, Word};
use isrf_sim::ExecEngine;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const STRIP_ROWS: u32 = 16;

/// A shrinkable recipe for a sparse matrix: the per-row fill comes from
/// proptest (so shrinking peels away rows and entries), the numeric
/// content from a seeded RNG.
#[derive(Debug, Clone)]
struct Recipe {
    /// 1–3 strips of 16 rows.
    strips: u32,
    /// 0 = banded, 1 = single-column, 2 = uniform (bandwidth = whole
    /// matrix, the pathological worst case for the condensed gather).
    shape: u8,
    /// Band half-width for the banded shape.
    bw: u32,
    /// Stored entries per row, `row_nnz[i] % 10` (0 = empty row);
    /// cycled if shorter than the matrix.
    row_nnz: Vec<u8>,
    /// Seed for column positions and values.
    seed: u64,
}

fn recipes() -> impl Strategy<Value = Recipe> {
    (
        1u32..=3,
        0u8..3,
        1u32..=8,
        prop::collection::vec(any::<u8>(), 1..48),
        any::<u64>(),
    )
        .prop_map(|(strips, shape, bw, row_nnz, seed)| Recipe {
            strips,
            shape,
            bw,
            row_nnz,
            seed,
        })
}

fn build(r: &Recipe) -> (Csr, Vec<f32>) {
    let n = r.strips * STRIP_ROWS;
    let mut rng = SmallRng::seed_from_u64(r.seed);
    let mut row_ptr = vec![0u32];
    let mut col_idx = Vec::new();
    let mut vals = Vec::new();
    for i in 0..n {
        let nnz = r.row_nnz[i as usize % r.row_nnz.len()] % 10;
        let mut cols: Vec<u32> = (0..nnz)
            .map(|_| match r.shape {
                0 => {
                    let off = rng.gen_range(-(r.bw as i32)..=r.bw as i32);
                    (i as i32 + off).rem_euclid(n as i32) as u32
                }
                1 => 0,
                _ => rng.gen_range(0..n),
            })
            .collect();
        cols.sort_unstable();
        cols.dedup();
        for c in cols {
            col_idx.push(c);
            vals.push(rng.gen_range(0.1f32..1.0));
        }
        row_ptr.push(col_idx.len() as u32);
    }
    let x = (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    (
        Csr {
            rows: n,
            cols: n,
            row_ptr,
            col_idx,
            vals,
        },
        x,
    )
}

fn expected_words(csr: &Csr, x: &[f32]) -> Vec<Word> {
    reference(csr, x, pad_of(csr))
        .into_iter()
        .map(from_f32)
        .collect()
}

fn read_output(pr: &isrf_apps::common::Prepared) -> Vec<Word> {
    let (base, words) = pr.outputs[0];
    pr.machine.mem().memory().read_block(base, words as usize)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random CSR × {Base, Isrf4} × {Tape, Interp}: the simulated
    /// `y = A * x` equals the host reference in every bit.
    #[test]
    fn spmv_matches_reference_on_both_engines(r in recipes()) {
        let (csr, x) = build(&r);
        let expect = expected_words(&csr, &x);
        for cfg in [ConfigName::Base, ConfigName::Isrf4] {
            for engine in [ExecEngine::Tape, ExecEngine::Interp] {
                let mut pr = prepare_csr(cfg, &csr, &x, STRIP_ROWS);
                pr.machine.set_engine(engine);
                pr.machine.run(&pr.program);
                prop_assert_eq!(
                    &read_output(&pr),
                    &expect,
                    "y diverged on {:?} under {:?}",
                    cfg,
                    engine
                );
            }
        }
    }

    /// Pausing at a random mid-run cycle, serializing, restoring into a
    /// fresh machine, and resuming reproduces the uninterrupted run:
    /// identical stats and identical output words.
    #[test]
    fn spmv_snapshot_resume_is_invisible(r in recipes(), at in 1u64..4000) {
        let (csr, x) = build(&r);
        for engine in [ExecEngine::Tape, ExecEngine::Interp] {
            let mut straight = prepare_csr(ConfigName::Isrf4, &csr, &x, STRIP_ROWS);
            straight.machine.set_engine(engine);
            let stats_s = straight.machine.run(&straight.program);
            let out_s = read_output(&straight);

            let mut pr = prepare_csr(ConfigName::Isrf4, &csr, &x, STRIP_ROWS);
            pr.machine.set_engine(engine);
            let (stats_p, out_p) = match pr.machine.run_for(&pr.program, at) {
                Some(stats) => (stats, read_output(&pr)),
                None => {
                    let snapshot = pr.machine.save_state(&pr.program);
                    let mut fresh = prepare_csr(ConfigName::Isrf4, &csr, &x, STRIP_ROWS);
                    fresh.machine.set_engine(engine);
                    fresh
                        .machine
                        .restore_state(&fresh.program, &snapshot)
                        .expect("snapshot restores into the same recipe");
                    let stats = fresh
                        .machine
                        .run_for(&fresh.program, u64::MAX)
                        .expect("resumed run completes");
                    (stats, read_output(&fresh))
                }
            };
            prop_assert_eq!(stats_s, stats_p, "stats differ under {:?} at {}", engine, at);
            prop_assert_eq!(&out_s, &out_p, "output differs under {:?} at {}", engine, at);
        }
    }
}
