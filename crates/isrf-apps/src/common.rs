//! Shared benchmark plumbing.

use std::cell::Cell;
use std::sync::Arc;

use isrf_core::config::{ConfigName, MachineConfig};
use isrf_kernel::ir::Kernel;
use isrf_kernel::sched::{schedule_cached, SchedParams, Schedule};
use isrf_mem::AddrPattern;
use isrf_sim::{Machine, StreamProgram};
use isrf_verify::Verifier;

thread_local! {
    static SEPARATION_OVERRIDE: Cell<Option<(u32, u32)>> = const { Cell::new(None) };
}

/// Override the (in-lane, cross-lane) address/data separations used by all
/// benchmark machines on this thread — the knob behind the Figure 15/16
/// parameter studies. Pass `None` to restore the Table 3 defaults.
pub fn set_separation_override(sep: Option<(u32, u32)>) {
    SEPARATION_OVERRIDE.with(|c| c.set(sep));
}

/// Build a machine for one of the paper's configurations.
///
/// # Panics
///
/// Panics if the preset fails validation (it cannot).
pub fn machine(cfg: ConfigName) -> Machine {
    let mut c = MachineConfig::preset(cfg);
    if let Some((inl, xl)) = SEPARATION_OVERRIDE.with(|c| c.get()) {
        c.sched.inlane_addr_data_separation = inl;
        c.sched.crosslane_addr_data_separation = xl;
    }
    let mut m = Machine::new(c).expect("presets validate");
    // Every benchmark machine carries the static hazard analyzer; with the
    // default `VerifyPolicy::Debug` it runs before each program in debug
    // builds (so the test suite proves every shipped program verifies
    // clean) and costs nothing in release benchmarking.
    m.set_verifier(Some(Arc::new(Verifier::new())));
    m
}

/// A benchmark run split at the machine/program boundary: the machine is
/// fully set up (data laid out in memory and the SRF, any un-measured
/// setup program already executed) and `program` is the measured stream
/// program. `machine.run(&program)` produces the benchmark's stats; the
/// split exists so a differential harness can execute the same program on
/// an independent functional reference executor and compare outcomes.
#[derive(Debug)]
pub struct Prepared {
    /// The machine, ready to run the measured program.
    pub machine: Machine,
    /// The measured stream program.
    pub program: StreamProgram,
    /// Memory regions `(base, words)` holding the benchmark's final
    /// output, for word-level result diffing.
    pub outputs: Vec<(u32, u32)>,
}

impl Prepared {
    /// Assemble a prepared benchmark, growing the functional memory over
    /// the declared output regions up front. Unwritten words read as
    /// zero either way, so this is invisible to results and cycle
    /// counts — it just keeps the one-time backing-store grow (a
    /// multi-megabyte zeroed `realloc` for apps with high output bases)
    /// out of the measured `Machine::run` call.
    pub fn new(mut machine: Machine, program: StreamProgram, outputs: Vec<(u32, u32)>) -> Prepared {
        for &(base, words) in &outputs {
            if words > 0 {
                let mem = machine.mem_mut().memory_mut();
                let last = base + (words - 1);
                mem.write(last, mem.read(last));
            }
        }
        Prepared {
            machine,
            program,
            outputs,
        }
    }
}

/// Schedule a kernel with the machine's parameters.
///
/// Memoized by kernel/parameter content hash: repeat invocations across
/// iterations, configurations, and parallel sweep workers share one
/// scheduling run (and one `Arc`, so the simulator's tape memo hits too).
///
/// # Panics
///
/// Panics if the kernel cannot be scheduled — benchmark kernels are fixed,
/// so this indicates a bug, not an input condition.
pub fn schedule_for(m: &Machine, k: &Kernel) -> Arc<Schedule> {
    schedule_cached(k, &SchedParams::from_machine(m.config()))
        .unwrap_or_else(|e| panic!("scheduling benchmark kernel failed: {e}"))
}

/// Address pattern that loads a `entries`-word table from memory at `base`
/// into an SRF stream replicated once per lane: global record `r` receives
/// `table[r / lanes]`, so lane-local record `i` is `table[i]` in every
/// lane.
pub fn replicated_table_pattern(base: u32, entries: u32, lanes: u32) -> AddrPattern {
    AddrPattern::Indexed((0..entries * lanes).map(|r| base + r / lanes).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replication_pattern_layout() {
        let p = replicated_table_pattern(100, 4, 8);
        let a = p.to_addrs();
        assert_eq!(a.len(), 32);
        assert_eq!(&a[0..8], &[100; 8]);
        assert_eq!(&a[8..16], &[101; 8]);
        assert_eq!(a[31], 103);
    }

    #[test]
    fn machines_build() {
        for c in ConfigName::ALL {
            let m = machine(c);
            assert_eq!(m.config().lanes, 8);
        }
    }
}
