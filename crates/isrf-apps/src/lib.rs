//! Benchmarks reproducing the HPCA 2004 indexed-SRF evaluation.
//!
//! Each benchmark module builds the paper's workload for all four machine
//! configurations (`Base`, `ISRF1`, `ISRF4`, `Cache`), runs it on the
//! simulator, *functionally verifies* the results against an independent
//! reference implementation, and returns the [`isrf_core::RunStats`] behind
//! Figures 11–13.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod bfs;
pub mod common;
pub mod fft2d;
pub mod filter;
pub mod histogram;
pub mod igraph;
pub mod micro;
pub mod registry;
pub mod rijndael;
pub mod sort;
pub mod spmv;
pub mod stencil;

pub use registry::{prepare_app, Profile, APPS};
