//! The application registry: every benchmark app reachable by its short
//! name, with one sizing knob.
//!
//! The figure harness, the differential suite, the trace/verify binaries
//! and the batch simulation server all need the same thing — "give me a
//! ready-to-run machine + program + expected outputs for app X on config Y
//! at size Z" — so the lookup lives here, below all of them.

use isrf_core::config::ConfigName;

use crate::common::Prepared;
use crate::{bfs, fft2d, filter, igraph, rijndael, sort, spmv, stencil};

/// Benchmark sizing profile: `Small` keeps unit tests and Criterion quick;
/// `Paper` uses the paper's workload sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Reduced sizes for CI and Criterion.
    Small,
    /// The paper's workload sizes.
    Paper,
}

/// The eight distinct applications (the IG benchmarks share one program
/// family), by the short names the differential suite, the `trace` binary
/// and the job server use.
pub const APPS: [&str; 8] = [
    "fft2d", "rijndael", "sort", "filter", "igraph", "spmv", "stencil", "bfs",
];

/// Build a ready-to-run machine + program + expected outputs for one app,
/// without running it — the caller installs tracers, runs, and inspects.
///
/// # Panics
///
/// Panics on an unknown app name (use [`APPS`]).
pub fn prepare_app(app: &str, cfg: ConfigName, profile: Profile) -> Prepared {
    let small = profile == Profile::Small;
    match app {
        "fft2d" => fft2d::prepare(
            cfg,
            &fft2d::Fft2dParams {
                reps: if small { 1 } else { 2 },
                ..Default::default()
            },
        ),
        "rijndael" => rijndael::prepare(
            cfg,
            &rijndael::RijndaelParams {
                chains_per_lane: if small { 2 } else { 8 },
                waves: if small { 2 } else { 4 },
                strips: if small { 2 } else { 4 },
                ..Default::default()
            },
        ),
        "sort" => sort::prepare(
            cfg,
            &sort::SortParams {
                keys_per_lane: if small { 64 } else { 512 },
                ..Default::default()
            },
        ),
        "filter" => filter::prepare(
            cfg,
            &filter::FilterParams {
                rows: if small { 32 } else { 256 },
                ..Default::default()
            },
        ),
        "igraph" => {
            let mut ds = igraph::dataset("IG_SML");
            if small {
                ds.nodes /= 4;
            }
            igraph::prepare(cfg, &ds)
        }
        "spmv" => spmv::prepare(
            cfg,
            &spmv::SpmvParams {
                rows: if small { 256 } else { 2048 },
                strip_rows: if small { 32 } else { 64 },
                ..Default::default()
            },
        ),
        "stencil" => stencil::prepare(
            cfg,
            &stencil::StencilParams {
                rows: if small { 64 } else { 256 },
                ..Default::default()
            },
        ),
        "bfs" => bfs::prepare(
            cfg,
            &bfs::BfsParams {
                nodes: if small { 512 } else { 4096 },
                strip_nodes: if small { 64 } else { 128 },
                max_degree: if small { 8 } else { 12 },
                window: if small { 32 } else { 64 },
                max_sweeps: if small { 8 } else { 12 },
                ..Default::default()
            },
        ),
        other => panic!("unknown app {other}; expected one of {APPS:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registered_app_prepares() {
        for app in APPS {
            let pr = prepare_app(app, ConfigName::Base, Profile::Small);
            assert!(!pr.program.is_empty(), "{app} builds a program");
        }
    }
}
