//! Reference AES-128 (Rijndael) implementation and T-table generation.
//!
//! The benchmark's kernels implement the T-table formulation the paper
//! cites (ref. 25): each round of the cipher becomes 16 table lookups plus
//! XORs. This module provides an *independent* byte-level reference
//! (SubBytes / ShiftRows / MixColumns / AddRoundKey), the table generator,
//! a scalar T-table encryptor (to validate the formulation), key expansion
//! and CBC chaining — everything needed to check the simulated kernels
//! against FIPS-197.

/// The AES S-box.
#[rustfmt::skip]
pub const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

fn xtime(x: u8) -> u8 {
    (x << 1) ^ (if x & 0x80 != 0 { 0x1b } else { 0 })
}

/// Expand a 128-bit key into 44 round-key words (big-endian packing).
pub fn key_expansion(key: &[u8; 16]) -> [u32; 44] {
    const RCON: [u32; 10] = [
        0x0100_0000,
        0x0200_0000,
        0x0400_0000,
        0x0800_0000,
        0x1000_0000,
        0x2000_0000,
        0x4000_0000,
        0x8000_0000,
        0x1b00_0000,
        0x3600_0000,
    ];
    let sub_word = |w: u32| -> u32 {
        (u32::from(SBOX[(w >> 24) as usize]) << 24)
            | (u32::from(SBOX[(w >> 16 & 0xff) as usize]) << 16)
            | (u32::from(SBOX[(w >> 8 & 0xff) as usize]) << 8)
            | u32::from(SBOX[(w & 0xff) as usize])
    };
    let mut w = [0u32; 44];
    for i in 0..4 {
        w[i] = u32::from_be_bytes([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
    }
    for i in 4..44 {
        let mut t = w[i - 1];
        if i % 4 == 0 {
            t = sub_word(t.rotate_left(8)) ^ RCON[i / 4 - 1];
        }
        w[i] = w[i - 4] ^ t;
    }
    w
}

/// Byte-level reference encryption of one block (column-major state).
pub fn encrypt_block_reference(rk: &[u32; 44], block: [u32; 4]) -> [u32; 4] {
    // Unpack big-endian words into a column-major byte state.
    let mut s = [0u8; 16];
    for c in 0..4 {
        let w = block[c].to_be_bytes();
        s[4 * c..4 * c + 4].copy_from_slice(&w);
    }
    let add_rk = |s: &mut [u8; 16], rk: &[u32]| {
        for c in 0..4 {
            let k = rk[c].to_be_bytes();
            for r in 0..4 {
                s[4 * c + r] ^= k[r];
            }
        }
    };
    let sub_bytes = |s: &mut [u8; 16]| {
        for b in s.iter_mut() {
            *b = SBOX[*b as usize];
        }
    };
    let shift_rows = |s: &mut [u8; 16]| {
        let old = *s;
        for r in 1..4 {
            for c in 0..4 {
                s[4 * c + r] = old[4 * ((c + r) % 4) + r];
            }
        }
    };
    let mix_columns = |s: &mut [u8; 16]| {
        for c in 0..4 {
            let a = [s[4 * c], s[4 * c + 1], s[4 * c + 2], s[4 * c + 3]];
            s[4 * c] = xtime(a[0]) ^ (xtime(a[1]) ^ a[1]) ^ a[2] ^ a[3];
            s[4 * c + 1] = a[0] ^ xtime(a[1]) ^ (xtime(a[2]) ^ a[2]) ^ a[3];
            s[4 * c + 2] = a[0] ^ a[1] ^ xtime(a[2]) ^ (xtime(a[3]) ^ a[3]);
            s[4 * c + 3] = (xtime(a[0]) ^ a[0]) ^ a[1] ^ a[2] ^ xtime(a[3]);
        }
    };

    add_rk(&mut s, &rk[0..4]);
    for round in 1..10 {
        sub_bytes(&mut s);
        shift_rows(&mut s);
        mix_columns(&mut s);
        add_rk(&mut s, &rk[4 * round..4 * round + 4]);
    }
    sub_bytes(&mut s);
    shift_rows(&mut s);
    add_rk(&mut s, &rk[40..44]);

    let mut out = [0u32; 4];
    for c in 0..4 {
        out[c] = u32::from_be_bytes([s[4 * c], s[4 * c + 1], s[4 * c + 2], s[4 * c + 3]]);
    }
    out
}

/// Generate the four round T-tables (`Te0..Te3`).
pub fn te_tables() -> [[u32; 256]; 4] {
    let mut te = [[0u32; 256]; 4];
    for x in 0..256 {
        let s = SBOX[x];
        let s2 = xtime(s);
        let s3 = s2 ^ s;
        let t0 = (u32::from(s2) << 24) | (u32::from(s) << 16) | (u32::from(s) << 8) | u32::from(s3);
        te[0][x] = t0;
        te[1][x] = t0.rotate_right(8);
        te[2][x] = t0.rotate_right(16);
        te[3][x] = t0.rotate_right(24);
    }
    te
}

/// Scalar T-table encryption — the formulation the simulated kernels use.
pub fn encrypt_block_ttable(rk: &[u32; 44], block: [u32; 4]) -> [u32; 4] {
    let te = te_tables();
    let mut s = [
        block[0] ^ rk[0],
        block[1] ^ rk[1],
        block[2] ^ rk[2],
        block[3] ^ rk[3],
    ];
    for round in 1..10 {
        let mut t = [0u32; 4];
        for i in 0..4 {
            t[i] = te[0][(s[i] >> 24) as usize]
                ^ te[1][(s[(i + 1) % 4] >> 16 & 0xff) as usize]
                ^ te[2][(s[(i + 2) % 4] >> 8 & 0xff) as usize]
                ^ te[3][(s[(i + 3) % 4] & 0xff) as usize]
                ^ rk[4 * round + i];
        }
        s = t;
    }
    let mut out = [0u32; 4];
    for i in 0..4 {
        out[i] = (u32::from(SBOX[(s[i] >> 24) as usize]) << 24)
            ^ (u32::from(SBOX[(s[(i + 1) % 4] >> 16 & 0xff) as usize]) << 16)
            ^ (u32::from(SBOX[(s[(i + 2) % 4] >> 8 & 0xff) as usize]) << 8)
            ^ u32::from(SBOX[(s[(i + 3) % 4] & 0xff) as usize])
            ^ rk[40 + i];
    }
    out
}

/// CBC-encrypt `blocks` (each 4 big-endian words) with a zero IV.
pub fn encrypt_cbc(rk: &[u32; 44], blocks: &[[u32; 4]]) -> Vec<[u32; 4]> {
    let mut prev = [0u32; 4];
    blocks
        .iter()
        .map(|b| {
            let x = [
                b[0] ^ prev[0],
                b[1] ^ prev[1],
                b[2] ^ prev[2],
                b[3] ^ prev[3],
            ];
            prev = encrypt_block_reference(rk, x);
            prev
        })
        .collect()
}

/// The FIPS-197 Appendix B key.
pub const FIPS_KEY: [u8; 16] = [
    0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fips197_appendix_b() {
        let rk = key_expansion(&FIPS_KEY);
        let pt = [0x3243_f6a8, 0x885a_308d, 0x3131_98a2, 0xe037_0734];
        let ct = encrypt_block_reference(&rk, pt);
        assert_eq!(ct, [0x3925_841d, 0x02dc_09fb, 0xdc11_8597, 0x196a_0b32]);
    }

    #[test]
    fn fips197_appendix_c() {
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        let rk = key_expansion(&key);
        let pt = [0x0011_2233, 0x4455_6677, 0x8899_aabb, 0xccdd_eeff];
        let ct = encrypt_block_reference(&rk, pt);
        assert_eq!(ct, [0x69c4_e0d8, 0x6a7b_0430, 0xd8cd_b780, 0x70b4_c55a]);
    }

    #[test]
    fn key_expansion_first_and_last_words() {
        // FIPS-197 Appendix A.1 expanded-key spot checks.
        let rk = key_expansion(&FIPS_KEY);
        assert_eq!(rk[0], 0x2b7e_1516);
        assert_eq!(rk[4], 0xa0fa_fe17);
        assert_eq!(rk[43], 0xb663_0ca6);
    }

    #[test]
    fn ttable_matches_reference() {
        let rk = key_expansion(&FIPS_KEY);
        for seed in 0..50u32 {
            let b = [
                seed.wrapping_mul(0x9e37_79b9),
                seed.wrapping_mul(0x85eb_ca6b) ^ 0xdead_beef,
                seed.wrapping_mul(0xc2b2_ae35),
                !seed,
            ];
            assert_eq!(
                encrypt_block_ttable(&rk, b),
                encrypt_block_reference(&rk, b),
                "block {seed}"
            );
        }
    }

    #[test]
    fn cbc_chains() {
        let rk = key_expansion(&FIPS_KEY);
        let blocks = vec![[1, 2, 3, 4], [5, 6, 7, 8]];
        let ct = encrypt_cbc(&rk, &blocks);
        assert_eq!(ct[0], encrypt_block_reference(&rk, [1, 2, 3, 4]));
        let x = [5 ^ ct[0][0], 6 ^ ct[0][1], 7 ^ ct[0][2], 8 ^ ct[0][3]];
        assert_eq!(ct[1], encrypt_block_reference(&rk, x));
    }

    #[test]
    fn te_table_relations() {
        let te = te_tables();
        for x in 0..256 {
            assert_eq!(te[1][x], te[0][x].rotate_right(8));
            assert_eq!(te[3][x], te[0][x].rotate_right(24));
            // Column sums: Te0[x] bytes are (2,1,1,3)*S[x] in GF(2^8).
            let s = SBOX[x] as u32;
            assert_eq!(te[0][x] >> 16 & 0xff, s);
            assert_eq!(te[0][x] >> 8 & 0xff, s);
        }
    }
}
