//! The Rijndael (AES-128) benchmark — Section 5.2.
//!
//! The optimized implementation performs large numbers of lookups into
//! pre-computed tables (4 round tables `Te0..Te3` plus the S-box): 160
//! word lookups per 16-byte block. Both versions run CBC mode with each
//! cluster encrypting independent data streams (e.g. network flows); a
//! zero IV starts each stream.
//!
//! * **ISRF** (`ISRF1`/`ISRF4`): tables are replicated per lane in the SRF
//!   and every lookup is an in-lane indexed access inside a single
//!   ten-round kernel. Table indices sit on the CBC loop-carried
//!   dependence, which is why this kernel's schedule length tracks the
//!   address/data separation in Figure 14.
//! * **Base**/`Cache`: table lookups become memory gathers. The cipher is
//!   split into 11 kernels (initial AddRoundKey, 9 rounds, final round);
//!   each kernel emits the next round's lookup addresses as a stream and a
//!   data-dependent gather fetches the table words — ~40 bytes of memory
//!   traffic per plaintext byte. On `Cache` the gathers are cacheable and
//!   hit once the 4 KB of tables are resident; traffic collapses but
//!   bandwidth and serialization still limit performance.
//!
//! Every run is validated block-for-block against the FIPS-197-checked
//! reference in [`crate::aes`].

use std::sync::Arc;

use isrf_core::config::ConfigName;
use isrf_core::stats::RunStats;
use isrf_core::Word;
use isrf_kernel::ir::{Kernel, KernelBuilder, Operand, StreamKind, StreamSlot, ValueId};
use isrf_mem::AddrPattern;
use isrf_sim::{Machine, StreamBinding, StreamProgram};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::aes;
use crate::common::{machine, replicated_table_pattern, schedule_for};

/// Benchmark sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RijndaelParams {
    /// Independent CBC chains per cluster (the loop-carried distance of
    /// the ISRF kernel).
    pub chains_per_lane: u32,
    /// Blocks per chain per strip.
    pub waves: u32,
    /// Strips (independent batches, pipelined back to back).
    pub strips: u32,
    /// RNG seed for plaintext generation.
    pub seed: u64,
}

impl Default for RijndaelParams {
    fn default() -> Self {
        RijndaelParams {
            chains_per_lane: 8,
            waves: 4,
            strips: 4,
            seed: 0x5eed_0001,
        }
    }
}

impl RijndaelParams {
    /// Blocks per strip.
    pub fn blocks_per_strip(&self) -> u32 {
        8 * self.chains_per_lane * self.waves
    }

    /// Total blocks encrypted.
    pub fn total_blocks(&self) -> u32 {
        self.blocks_per_strip() * self.strips
    }
}

/// Extract byte `pos` (3 = most significant) of `s`.
fn extract_byte(b: &mut KernelBuilder, s: ValueId, pos: u32) -> ValueId {
    let mask = b.constant(0xff);
    match pos {
        3 => {
            let c = b.constant(24);
            b.shr(s, c)
        }
        0 => b.and(s, mask),
        _ => {
            let c = b.constant(8 * pos);
            let sh = b.shr(s, c);
            b.and(sh, mask)
        }
    }
}

/// Build the single-kernel ISRF cipher. `chains_per_lane` is the carried
/// distance of the CBC feedback (1 = the Figure 14 study kernel).
pub fn build_isrf_kernel(rk: &[u32; 44], chains_per_lane: u32) -> Kernel {
    let mut b = KernelBuilder::new("rijndael");
    let pt = b.stream("pt", StreamKind::SeqIn);
    let ct = b.stream("ct", StreamKind::SeqOut);
    let te: Vec<StreamSlot> = (0..4)
        .map(|i| b.stream(format!("te{i}"), StreamKind::IdxInRead))
        .collect();
    let sbox = b.stream("sbox", StreamKind::IdxInRead);

    // CBC feedback placeholders, patched to the final cipher words below.
    let dist = chains_per_lane.max(1);
    let zero = b.constant(0);
    let prev: Vec<ValueId> = (0..4).map(|_| b.mov(zero)).collect();

    // Initial AddRoundKey (plus the CBC xor).
    let mut s: Vec<ValueId> = (0..4)
        .map(|i| {
            let p = b.seq_read(pt);
            let x = b.xor(p, prev[i]);
            let k = b.constant(rk[i]);
            b.xor(x, k)
        })
        .collect();

    // Nine table-lookup rounds.
    for round in 1..10 {
        // All sixteen byte extracts of the current state.
        let bytes: Vec<[ValueId; 4]> = s
            .iter()
            .map(|&w| [0, 1, 2, 3].map(|pos| extract_byte(&mut b, w, pos)))
            .collect();
        s = (0..4)
            .map(|i| {
                let v0 = b.idx_load(te[0], bytes[i][3]);
                let v1 = b.idx_load(te[1], bytes[(i + 1) % 4][2]);
                let v2 = b.idx_load(te[2], bytes[(i + 2) % 4][1]);
                let v3 = b.idx_load(te[3], bytes[(i + 3) % 4][0]);
                let x01 = b.xor(v0, v1);
                let x23 = b.xor(v2, v3);
                let x = b.xor(x01, x23);
                let k = b.constant(rk[4 * round + i]);
                b.xor(x, k)
            })
            .collect();
    }

    // Final round: S-box lookups, byte assembly, last AddRoundKey.
    let bytes: Vec<[ValueId; 4]> = s
        .iter()
        .map(|&w| [0, 1, 2, 3].map(|pos| extract_byte(&mut b, w, pos)))
        .collect();
    let out: Vec<ValueId> = (0..4)
        .map(|i| {
            let s0 = b.idx_load(sbox, bytes[i][3]);
            let s1 = b.idx_load(sbox, bytes[(i + 1) % 4][2]);
            let s2 = b.idx_load(sbox, bytes[(i + 2) % 4][1]);
            let s3 = b.idx_load(sbox, bytes[(i + 3) % 4][0]);
            let c24 = b.constant(24);
            let c16 = b.constant(16);
            let c8 = b.constant(8);
            let h0 = b.shl(s0, c24);
            let h1 = b.shl(s1, c16);
            let h2 = b.shl(s2, c8);
            let o01 = b.or(h0, h1);
            let o23 = b.or(h2, s3);
            let o = b.or(o01, o23);
            let k = b.constant(rk[40 + i]);
            b.xor(o, k)
        })
        .collect();
    for &w in &out {
        b.seq_write(ct, w);
    }
    // Patch the CBC feedback: prev_i = out_i from `dist` iterations ago.
    for i in 0..4 {
        b.set_operand(prev[i], 0, Operand::carried(out[i], dist, 0));
    }
    b.build().expect("rijndael ISRF kernel is well-formed")
}

/// Build the Base round kernels. `stage` 0 is the initial AddRoundKey
/// (reads plaintext + chain state, emits round-1 lookup addresses);
/// 1..=9 are table rounds (read 16 gathered words, emit next addresses);
/// 10 is the final round (reads 16 gathered S-box words, writes
/// ciphertext). `bases` are the memory word addresses of Te0..Te3 and the
/// S-box table.
pub fn build_base_kernel(rk: &[u32; 44], stage: u32, bases: &[u32; 5]) -> Kernel {
    let mut b = KernelBuilder::new(format!("rijndael_base_r{stage}"));
    match stage {
        0 => {
            let pt = b.stream("pt", StreamKind::SeqIn);
            let chain = b.stream("chain", StreamKind::SeqIn);
            let idx = b.stream("idx", StreamKind::SeqOut);
            let s: Vec<ValueId> = (0..4)
                .map(|i| {
                    let p = b.seq_read(pt);
                    let c = b.seq_read(chain);
                    let x = b.xor(p, c);
                    let k = b.constant(rk[i]);
                    b.xor(x, k)
                })
                .collect();
            emit_round_addrs(&mut b, idx, &s, bases, false);
        }
        1..=8 => {
            let lut = b.stream("lut", StreamKind::SeqIn);
            let idx = b.stream("idx", StreamKind::SeqOut);
            let s = absorb_round(&mut b, lut, rk, stage);
            emit_round_addrs(&mut b, idx, &s, bases, false);
        }
        9 => {
            let lut = b.stream("lut", StreamKind::SeqIn);
            let idx = b.stream("idx", StreamKind::SeqOut);
            let s = absorb_round(&mut b, lut, rk, stage);
            emit_round_addrs(&mut b, idx, &s, bases, true);
        }
        10 => {
            let lut = b.stream("lut", StreamKind::SeqIn);
            let ct = b.stream("ct", StreamKind::SeqOut);
            // 16 S-box bytes arrive in assembly order.
            let v: Vec<ValueId> = (0..16).map(|_| b.seq_read(lut)).collect();
            for i in 0..4 {
                let c24 = b.constant(24);
                let c16 = b.constant(16);
                let c8 = b.constant(8);
                let h0 = b.shl(v[4 * i], c24);
                let h1 = b.shl(v[4 * i + 1], c16);
                let h2 = b.shl(v[4 * i + 2], c8);
                let o01 = b.or(h0, h1);
                let o23 = b.or(h2, v[4 * i + 3]);
                let o = b.or(o01, o23);
                let k = b.constant(rk[40 + i]);
                let w = b.xor(o, k);
                b.seq_write(ct, w);
            }
        }
        _ => panic!("stage out of range"),
    }
    b.build().expect("rijndael base kernel is well-formed")
}

/// Read 16 gathered table words and produce the round output state.
fn absorb_round(
    b: &mut KernelBuilder,
    lut: StreamSlot,
    rk: &[u32; 44],
    round: u32,
) -> Vec<ValueId> {
    let v: Vec<ValueId> = (0..16).map(|_| b.seq_read(lut)).collect();
    (0..4)
        .map(|i| {
            let x01 = b.xor(v[4 * i], v[4 * i + 1]);
            let x23 = b.xor(v[4 * i + 2], v[4 * i + 3]);
            let x = b.xor(x01, x23);
            let k = b.constant(rk[(4 * round + i as u32) as usize]);
            b.xor(x, k)
        })
        .collect()
}

/// Emit 16 memory word addresses for the next round's gather. For a table
/// round: `Te_k[byte]`; for the final round (`sbox = true`): `S[byte]` in
/// assembly order.
fn emit_round_addrs(
    b: &mut KernelBuilder,
    idx: StreamSlot,
    s: &[ValueId],
    bases: &[u32; 5],
    sbox: bool,
) {
    for i in 0..4 {
        let positions = [
            (i, 3u32, 0usize),
            ((i + 1) % 4, 2, 1),
            ((i + 2) % 4, 1, 2),
            ((i + 3) % 4, 0, 3),
        ];
        for (word, pos, table) in positions {
            let byte = extract_byte(b, s[word], pos);
            let base = b.constant(if sbox { bases[4] } else { bases[table] });
            let addr = b.add(base, byte);
            b.seq_write(idx, addr);
        }
    }
}

/// Memory layout constants for the benchmark.
struct Layout {
    te_bases: [u32; 5],
    pt_base: u32,
    ct_base: u32,
}

const TABLE_BASE: u32 = 0x10_0000;

/// The fixed memory layout (independent of machine state).
fn layout() -> Layout {
    Layout {
        te_bases: [
            TABLE_BASE,
            TABLE_BASE + 256,
            TABLE_BASE + 512,
            TABLE_BASE + 768,
            TABLE_BASE + 1024,
        ],
        pt_base: 0,
        ct_base: 0x40_0000,
    }
}

fn lay_out_memory(m: &mut Machine, params: &RijndaelParams) -> Layout {
    let l = layout();
    let te = aes::te_tables();
    for (t, &base) in te.iter().zip(&l.te_bases) {
        m.mem_mut().memory_mut().write_block(base, t);
    }
    let sbox_words: Vec<Word> = aes::SBOX.iter().map(|&x| x as u32).collect();
    m.mem_mut()
        .memory_mut()
        .write_block(l.te_bases[4], &sbox_words);

    // Plaintext: random blocks, contiguous per strip.
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let total_words = params.total_blocks() * 4;
    let pt: Vec<Word> = (0..total_words).map(|_| rng.gen()).collect();
    m.mem_mut().memory_mut().write_block(l.pt_base, &pt);
    l
}

/// Expected ciphertext for the whole run, using the reference cipher.
///
/// Chain (strip, cluster `c`, slot `k`) encrypts blocks whose record index
/// within the strip is `c + 8*k + 8*L*w` for wave `w` (with `L` chains per
/// lane), CBC-chained with a zero IV.
fn expected_ciphertext(m: &Machine, params: &RijndaelParams, layout: &Layout) -> Vec<Word> {
    let rk = aes::key_expansion(&aes::FIPS_KEY);
    let strip_blocks = params.blocks_per_strip();
    let mut ct = vec![0u32; (params.total_blocks() * 4) as usize];
    for s in 0..params.strips {
        for c in 0..8u32 {
            for k in 0..params.chains_per_lane {
                let blocks: Vec<[u32; 4]> = (0..params.waves)
                    .map(|w| {
                        let rec = s * strip_blocks + c + 8 * k + 8 * params.chains_per_lane * w;
                        let a = layout.pt_base + rec * 4;
                        [
                            m.mem().memory().read(a),
                            m.mem().memory().read(a + 1),
                            m.mem().memory().read(a + 2),
                            m.mem().memory().read(a + 3),
                        ]
                    })
                    .collect();
                for (w, cblk) in aes::encrypt_cbc(&rk, &blocks).iter().enumerate() {
                    let rec = s * strip_blocks + c + 8 * k + 8 * params.chains_per_lane * w as u32;
                    for (j, &word) in cblk.iter().enumerate() {
                        ct[(rec * 4) as usize + j] = word;
                    }
                }
            }
        }
    }
    ct
}

fn verify(m: &Machine, params: &RijndaelParams, layout: &Layout) {
    let expect = expected_ciphertext(m, params, layout);
    for (i, &e) in expect.iter().enumerate() {
        let got = m.mem().memory().read(layout.ct_base + i as u32);
        assert_eq!(
            got, e,
            "ciphertext word {i} mismatch: got {got:#010x}, want {e:#010x}"
        );
    }
}

/// Prepare the ISRF version (valid on `Isrf1`/`Isrf4`).
fn prepare_isrf(cfg: ConfigName, params: &RijndaelParams) -> crate::common::Prepared {
    let mut m = machine(cfg);
    let layout = lay_out_memory(&mut m, params);
    let rk = aes::key_expansion(&aes::FIPS_KEY);
    let kernel = Arc::new(build_isrf_kernel(&rk, params.chains_per_lane));
    let sched = schedule_for(&m, &kernel);

    let lanes = m.config().lanes as u32;
    // Tables, replicated per lane.
    let tables: Vec<StreamBinding> = (0..5).map(|_| m.alloc_stream(1, 256 * lanes)).collect();
    let strip_blocks = params.blocks_per_strip();
    let pt_bufs = [
        m.alloc_stream(4, strip_blocks),
        m.alloc_stream(4, strip_blocks),
    ];
    let ct_bufs = [
        m.alloc_stream(4, strip_blocks),
        m.alloc_stream(4, strip_blocks),
    ];

    // Setup program: load the tables once. The paper's measurements are of
    // steady-state software-pipelined execution where the 4 KB of tables
    // are already SRF-resident, so table loads are excluded from the
    // measured run (they amortize to zero over repeated strips).
    let mut setup = StreamProgram::new();
    for (t, base) in layout.te_bases.iter().enumerate() {
        setup.load(
            replicated_table_pattern(*base, 256, lanes),
            tables[t],
            false,
            &[],
        );
    }
    m.run(&setup);
    m.reset_stats();

    let mut p = StreamProgram::new();
    let mut prev_kernel = None;
    let mut buf_user: [Option<isrf_sim::ProgOpId>; 2] = [None, None];
    let iters = (params.chains_per_lane * params.waves) as u64;
    for s in 0..params.strips {
        let pick = (s % 2) as usize;
        let mut ldeps: Vec<isrf_sim::ProgOpId> = Vec::new();
        if let Some(u) = buf_user[pick] {
            ldeps.push(u);
        }
        let load = p.load(
            AddrPattern::contiguous(layout.pt_base + s * strip_blocks * 4, strip_blocks * 4),
            pt_bufs[pick],
            false,
            &ldeps,
        );
        let mut kdeps = vec![load];
        if let Some(k) = prev_kernel {
            kdeps.push(k);
        }
        let mut bindings = vec![pt_bufs[pick], ct_bufs[pick]];
        bindings.extend(tables.iter().copied());
        let k = p.kernel(Arc::clone(&kernel), sched.clone(), bindings, iters, &kdeps);
        p.store(
            ct_bufs[pick],
            AddrPattern::contiguous(layout.ct_base + s * strip_blocks * 4, strip_blocks * 4),
            false,
            &[k],
        );
        prev_kernel = Some(k);
        buf_user[pick] = Some(k);
    }
    crate::common::Prepared::new(m, p, vec![(layout.ct_base, params.total_blocks() * 4)])
}

/// Prepare the Base/Cache version: 11 kernels per wave with data-dependent
/// gathers between them; `cacheable` routes the gathers through the cache.
fn prepare_base(cfg: ConfigName, params: &RijndaelParams) -> crate::common::Prepared {
    let mut m = machine(cfg);
    let cacheable = m.config().cache.is_some();
    let layout = lay_out_memory(&mut m, params);
    let rk = aes::key_expansion(&aes::FIPS_KEY);
    let kernels: Vec<Arc<Kernel>> = (0..=10)
        .map(|r| Arc::new(build_base_kernel(&rk, r, &layout.te_bases)))
        .collect();
    let scheds: Vec<_> = kernels.iter().map(|k| schedule_for(&m, k)).collect();

    let l = params.chains_per_lane;
    let wave_blocks = 8 * l; // blocks per wave
    let iters = l as u64;

    // Per strip: pt buffer (whole strip), a zeroed IV region, idx/lut
    // double buffers, and the strip's ct region (whose wave windows also
    // serve as the next wave's CBC chain input).
    struct StripBufs {
        pt: StreamBinding,
        iv: StreamBinding,
        idx: [StreamBinding; 2],
        lut: [StreamBinding; 2],
        ct: StreamBinding,
    }
    let strip_blocks = params.blocks_per_strip();
    let bufs: Vec<StripBufs> = (0..params.strips)
        .map(|_| StripBufs {
            pt: m.alloc_stream(4, strip_blocks),
            iv: m.alloc_stream(4, wave_blocks),
            idx: [
                m.alloc_stream(16, wave_blocks),
                m.alloc_stream(16, wave_blocks),
            ],
            lut: [
                m.alloc_stream(16, wave_blocks),
                m.alloc_stream(16, wave_blocks),
            ],
            ct: m.alloc_stream(4, strip_blocks),
        })
        .collect();
    // Zero the wave-0 chain state (the IV).
    for b in &bufs {
        let zeros = vec![0u32; (wave_blocks * 4) as usize];
        m.write_stream(&b.iv, &zeros);
    }

    let mut p = StreamProgram::new();
    // Load each strip's plaintext up front (it fits; strips pipeline at the
    // kernel level below).
    let pt_loads: Vec<_> = (0..params.strips)
        .map(|s| {
            p.load(
                AddrPattern::contiguous(layout.pt_base + s * strip_blocks * 4, strip_blocks * 4),
                bufs[s as usize].pt,
                false,
                &[],
            )
        })
        .collect();

    // last kernel of each strip's previous wave (CBC serialization point).
    let mut prev_k10: Vec<Option<isrf_sim::ProgOpId>> = vec![None; params.strips as usize];
    for w in 0..params.waves {
        for s in 0..params.strips as usize {
            let sb = &bufs[s];
            // Window the strip's pt stream to this wave's blocks.
            let mut pt_wave = sb.pt;
            pt_wave.start_record = w * wave_blocks;
            pt_wave.records = wave_blocks;
            let mut ct_wave = sb.ct;
            ct_wave.start_record = w * wave_blocks;
            ct_wave.records = wave_blocks;
            // CBC chain input: zero IV for wave 0, else the previous
            // wave's ciphertext window.
            let chain = if w == 0 {
                sb.iv
            } else {
                let mut c = sb.ct;
                c.start_record = (w - 1) * wave_blocks;
                c.records = wave_blocks;
                c
            };

            // k0: pt + chain -> idx.
            let mut deps = vec![pt_loads[s]];
            if let Some(k) = prev_k10[s] {
                deps.push(k);
            }
            let mut last = p.kernel(
                Arc::clone(&kernels[0]),
                scheds[0].clone(),
                vec![pt_wave, chain, sb.idx[0]],
                iters,
                &deps,
            );
            for r in 1..=9u32 {
                let ip = ((r - 1) % 2) as usize;
                let op = (r % 2) as usize;
                let g = p.gather_dyn(sb.idx[ip], 0, sb.lut[ip], cacheable, &[last]);
                last = p.kernel(
                    Arc::clone(&kernels[r as usize]),
                    scheds[r as usize].clone(),
                    vec![sb.lut[ip], sb.idx[op]],
                    iters,
                    &[g],
                );
            }
            // Final gather (S-box) + k10 -> ct wave + next chain state.
            let g = p.gather_dyn(sb.idx[1], 0, sb.lut[1], cacheable, &[last]);
            let k10 = p.kernel(
                Arc::clone(&kernels[10]),
                scheds[10].clone(),
                vec![sb.lut[1], ct_wave],
                iters,
                &[g],
            );
            prev_k10[s] = Some(k10);
        }
    }
    // Store all ciphertext.
    for (s, b) in bufs.iter().enumerate() {
        let dep = prev_k10[s].expect("at least one wave ran");
        p.store(
            b.ct,
            AddrPattern::contiguous(
                layout.ct_base + s as u32 * strip_blocks * 4,
                strip_blocks * 4,
            ),
            false,
            &[dep],
        );
    }

    crate::common::Prepared::new(m, p, vec![(layout.ct_base, params.total_blocks() * 4)])
}

/// Set up the machine (tables, plaintext, any un-measured setup) and build
/// the measured program without running it.
pub fn prepare(cfg: ConfigName, params: &RijndaelParams) -> crate::common::Prepared {
    match cfg {
        ConfigName::Isrf1 | ConfigName::Isrf4 => prepare_isrf(cfg, params),
        ConfigName::Base | ConfigName::Cache => prepare_base(cfg, params),
    }
}

/// Run the benchmark on `cfg`; the result is functionally verified against
/// the FIPS-checked reference before returning.
///
/// # Panics
///
/// Panics if the simulated ciphertext diverges from the reference cipher.
pub fn run(cfg: ConfigName, params: &RijndaelParams) -> RunStats {
    let mut pr = prepare(cfg, params);
    let stats = pr.machine.run(&pr.program);
    verify(&pr.machine, params, &layout());
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> RijndaelParams {
        RijndaelParams {
            chains_per_lane: 2,
            waves: 2,
            strips: 2,
            seed: 42,
        }
    }

    #[test]
    fn isrf_kernel_is_valid_and_schedulable() {
        let rk = aes::key_expansion(&aes::FIPS_KEY);
        let k = build_isrf_kernel(&rk, 1);
        assert!(k.validate().is_ok());
        assert!(k.ops.len() > 500, "full ten-round cipher: {}", k.ops.len());
    }

    #[test]
    fn isrf_functional() {
        run(ConfigName::Isrf4, &small());
    }

    #[test]
    fn base_functional() {
        run(ConfigName::Base, &small());
    }

    #[test]
    fn cache_functional() {
        run(ConfigName::Cache, &small());
    }

    #[test]
    fn isrf1_functional() {
        run(ConfigName::Isrf1, &small());
    }

    #[test]
    fn isrf_beats_base_and_slashes_traffic() {
        let params = small();
        let base = run(ConfigName::Base, &params);
        let isrf = run(ConfigName::Isrf4, &params);
        // Paper: 4.11x speedup, ~95% traffic reduction (Figures 11/12).
        assert!(
            isrf.speedup_over(&base) > 2.0,
            "speedup {:.2}",
            isrf.speedup_over(&base)
        );
        let ratio = isrf.mem.normalized_to(&base.mem);
        assert!(ratio < 0.15, "traffic ratio {ratio:.3}");
    }

    #[test]
    fn cache_captures_lookups_but_loses_to_isrf() {
        let params = small();
        let base = run(ConfigName::Base, &params);
        let cache = run(ConfigName::Cache, &params);
        let isrf = run(ConfigName::Isrf4, &params);
        // Cache eliminates most off-chip lookup traffic...
        assert!(cache.mem.normalized_to(&base.mem) < 0.5);
        // ...and beats Base, but ISRF4 beats Cache (Figure 12).
        assert!(cache.speedup_over(&base) > 1.0);
        assert!(isrf.cycles < cache.cycles);
    }
}
