//! Microbenchmarks for the parameter studies of Figures 17 and 18.
//!
//! These drive the indexed-access machinery directly (no kernel schedule),
//! mirroring the paper's micro-benchmarks:
//!
//! * [`inlane_throughput`] (Figure 17): every cycle each cluster issues
//!   4 random reads (one per indexed stream) and consumes each datum a
//!   fixed separation after its issue, stalling when it is late. Sweeps
//!   the number of sub-arrays per bank and the address-FIFO size; exposes
//!   head-of-line blocking and the issue-stall feedback loop.
//! * [`crosslane_throughput`] (Figure 18): every cycle each cluster issues
//!   1 random cross-lane read while 3 sequential streams stay active
//!   (taking their share of the SRF port), with a configurable fraction of
//!   cycles carrying explicit inter-cluster communication, which has
//!   priority over cross-lane data returns.

use isrf_core::config::{ConfigName, CrossLaneTopology, MachineConfig};
use isrf_core::stats::SrfTraffic;
use isrf_sim::{service_indexed, IdxKind, IdxParams, IdxState, Srf, StreamBinding};
use isrf_trace::Tracer;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Sustained in-lane indexed throughput (words/cycle/lane) with `subarrays`
/// sub-arrays per bank, `fifo` address-FIFO entries, and `separation`
/// cycles between address issue and data consumption (the paper uses 8).
pub fn inlane_throughput(subarrays: usize, fifo: usize, separation: u64, cycles: u64) -> f64 {
    let mut cfg = MachineConfig::preset(ConfigName::Isrf4);
    cfg.srf.subarrays = subarrays;
    let idx = cfg.srf.indexed.as_mut().expect("ISRF preset");
    idx.inlane_words_per_cycle = subarrays;
    idx.addr_fifo_entries = fifo.max(1);
    cfg.validate().expect("micro config is valid");

    let lanes = cfg.lanes;
    let mut srf = Srf::new(&cfg);
    let range = srf.alloc(srf.bank_words());
    let binding = StreamBinding::whole(range, 1, srf.bank_words());
    let n_streams = 4;
    let mut states: Vec<IdxState> = (0..n_streams)
        .map(|_| IdxState::new(binding, IdxKind::InLaneRead, lanes, &cfg))
        .collect();
    let p = IdxParams::from_machine(&cfg);
    let mut rng = SmallRng::seed_from_u64(0x000F_1617);
    let bank_words = srf.bank_words();

    // The driving "kernel" is a software-pipelined SIMD loop at II = 1:
    // each advance issues 4 addresses (one per stream, all lanes) and pops
    // the 4 data of the iteration issued `separation` *advances* earlier.
    // The machine stalls — no lane does anything — when any address FIFO
    // is full at issue or any due datum has not returned (the paper's
    // arbitration-failure/bank-conflict stalls).
    let mut issued: u64 = 0; // iterations issued
    let mut popped_iters: u64 = 0; // iterations whose data was consumed
    let mut rr = 0;
    let mut traffic = SrfTraffic::default();

    for now in 0..cycles {
        for s in states.iter_mut() {
            s.tick_arrivals(now);
        }
        let must_pop = issued >= popped_iters + separation;
        let can_pop = !must_pop || states.iter().all(|s| (0..lanes).all(|l| s.can_pop_data(l)));
        let can_issue = states
            .iter()
            .all(|s| (0..lanes).all(|l| s.can_push_addr(l)));
        if can_pop && can_issue {
            if must_pop {
                for s in states.iter_mut() {
                    for lane in 0..lanes {
                        s.pop_data(lane);
                    }
                }
                popped_iters += 1;
            }
            for s in states.iter_mut() {
                for lane in 0..lanes {
                    s.push_addr(lane, rng.gen_range(0..bank_words));
                }
            }
            issued += 1;
        }
        service_indexed(
            &mut states,
            &mut srf,
            now,
            &p,
            &mut rr,
            &mut traffic,
            &mut Tracer::Null,
        );
    }
    (popped_iters * n_streams as u64) as f64 / cycles as f64
}

/// Sustained cross-lane indexed throughput (words/cycle/lane) with
/// `ports_per_bank` network ports per SRF bank and `comm_percent` of
/// cycles occupied by explicit inter-cluster communication. Three
/// sequential streams per cluster stay active, competing for the SRF port
/// as in the paper's setup.
pub fn crosslane_throughput(ports_per_bank: usize, comm_percent: u32, cycles: u64) -> f64 {
    crosslane_throughput_with_topology(
        ports_per_bank,
        comm_percent,
        CrossLaneTopology::Crossbar,
        cycles,
    )
}

/// [`crosslane_throughput`] with an explicit interconnect topology — the
/// sparse-interconnect study the paper's Section 7 proposes.
pub fn crosslane_throughput_with_topology(
    ports_per_bank: usize,
    comm_percent: u32,
    topology: CrossLaneTopology,
    cycles: u64,
) -> f64 {
    let mut cfg = MachineConfig::preset(ConfigName::Isrf4);
    let idx = cfg.srf.indexed.as_mut().expect("ISRF preset");
    idx.network_ports_per_bank = ports_per_bank;
    idx.crosslane_topology = topology;
    cfg.validate().expect("micro config is valid");

    let lanes = cfg.lanes;
    let m = cfg.srf.words_per_seq_access as u64;
    let mut srf = Srf::new(&cfg);
    let range = srf.alloc(srf.bank_words());
    let total_records = srf.bank_words() * lanes as u32;
    let binding = StreamBinding::whole(range, 1, total_records);
    let mut state = vec![IdxState::new(binding, IdxKind::CrossLaneRead, lanes, &cfg)];
    let p = IdxParams::from_machine(&cfg);
    let mut rng = SmallRng::seed_from_u64(0x000F_1618);

    // Scheduled consumer: the paper's 20-cycle cross-lane address/data
    // separation, expressed in schedule advances at the driver's issue
    // rate (and bounded by the FIFO + stream-buffer capacity of 16
    // outstanding accesses).
    const SEP: u64 = 8;
    let mut issued: u64 = 0;
    let mut popped: u64 = 0;
    // Three background sequential streams, each consuming one word per
    // cycle per cluster out of an 8-word buffer refilled by port grants.
    let mut seq_buf = [8i64, 8, 8];
    let mut rr_grant = 0usize;
    let mut rr = 0;
    let mut comm_acc: u32 = 0;
    let mut traffic = SrfTraffic::default();

    for now in 0..cycles {
        // Explicit comm this cycle? It has priority on the data network,
        // leaving fewer return slots for cross-lane data.
        comm_acc += comm_percent;
        let comm_busy = if comm_acc >= 100 {
            comm_acc -= 100;
            true
        } else {
            false
        };
        let mut return_budget = if comm_busy { 2 } else { lanes };
        state[0].tick_arrivals_budgeted(now, &mut return_budget);
        // The driving kernel consumes each datum a fixed number of schedule
        // advances after its issue (the cross-lane address/data separation)
        // and stalls — issuing nothing — when it is late.
        let must_pop = issued >= popped + SEP;
        let can_pop = !must_pop || (0..lanes).all(|l| state[0].can_pop_data(l));
        let can_issue = (0..lanes).all(|l| state[0].can_push_addr(l));
        if can_pop && can_issue {
            if must_pop {
                for lane in 0..lanes {
                    state[0].pop_data(lane);
                }
                popped += 1;
            }
            for lane in 0..lanes {
                state[0].push_addr(lane, rng.gen_range(0..total_records));
            }
            issued += 1;
        }
        // Sequential consumption: the driving kernel's natural II is 2
        // (4 stream accesses per iteration on single-ported buffers), so
        // each background stream consumes one word every other cycle.
        if now % 2 == 0 {
            for b in seq_buf.iter_mut() {
                *b -= 1;
            }
        }
        // Stage-1 arbitration: sequential streams needing a refill compete
        // with the indexed group, round-robin.
        let mut requesters: Vec<usize> = (0..3).filter(|&i| seq_buf[i] <= (8 - m as i64)).collect();
        if state[0].pending_addresses() {
            requesters.push(3);
        }
        if let Some(&winner) = requesters
            .iter()
            .find(|&&r| r >= rr_grant)
            .or(requesters.first())
        {
            rr_grant = (winner + 1) % 4;
            if winner == 3 {
                service_indexed(
                    &mut state,
                    &mut srf,
                    now,
                    &p,
                    &mut rr,
                    &mut traffic,
                    &mut Tracer::Null,
                );
            } else {
                seq_buf[winner] = (seq_buf[winner] + m as i64).min(8);
            }
        }
        // Keep the background streams from starving the measurement: they
        // never stall the cluster in this micro-benchmark.
        for b in seq_buf.iter_mut() {
            *b = (*b).max(0);
        }
    }
    popped as f64 / cycles as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig17_throughput_rises_with_subarrays() {
        let t1 = inlane_throughput(1, 8, 8, 2000);
        let t2 = inlane_throughput(2, 8, 8, 2000);
        let t4 = inlane_throughput(4, 8, 8, 2000);
        let t8 = inlane_throughput(8, 8, 8, 2000);
        assert!(t1 < t2 && t2 < t4 && t4 <= t8, "{t1} {t2} {t4} {t8}");
        // One sub-array saturates near 1 word/cycle/lane; the paper's
        // 4-sub-array point lands near 2.5-3.
        assert!(t1 > 0.5 && t1 <= 1.01, "t1 = {t1}");
        assert!(t4 > 1.8 && t4 < 3.5, "t4 = {t4}");
    }

    #[test]
    fn fig17_throughput_rises_with_fifo_depth() {
        let shallow = inlane_throughput(4, 1, 8, 2000);
        let mid = inlane_throughput(4, 4, 8, 2000);
        let deep = inlane_throughput(4, 8, 8, 2000);
        assert!(
            shallow < mid && mid <= deep + 0.05,
            "{shallow} {mid} {deep}"
        );
    }

    #[test]
    fn fig17_short_separation_hurts() {
        let s8 = inlane_throughput(4, 8, 8, 2000);
        let s2 = inlane_throughput(4, 8, 2, 2000);
        // The paper reports ~50% loss at separation 2.
        assert!(s2 < 0.75 * s8, "sep2 {s2} vs sep8 {s8}");
    }

    #[test]
    fn ring_topology_costs_throughput() {
        // Section 7's sparse-interconnect question: a bisection-limited
        // ring with hop latency must underperform the crossbar.
        let xbar = crosslane_throughput_with_topology(4, 0, CrossLaneTopology::Crossbar, 3000);
        let ring = crosslane_throughput_with_topology(4, 0, CrossLaneTopology::Ring, 3000);
        assert!(ring < xbar, "ring {ring} vs crossbar {xbar}");
        assert!(ring > 0.1, "the ring still makes progress: {ring}");
    }

    #[test]
    fn fig18_ports_help_and_comm_hurts() {
        let p1 = crosslane_throughput(1, 0, 3000);
        let p2 = crosslane_throughput(2, 0, 3000);
        let p4 = crosslane_throughput(4, 0, 3000);
        assert!(p1 < p2, "{p1} {p2}");
        assert!(p2 <= p4 + 0.02, "{p2} {p4}");
        // Figure 18's range is roughly 0.3-0.55 words/cycle/lane.
        assert!(p1 > 0.2 && p4 < 0.8, "{p1} {p4}");
        // The paper's key claim (Section 5.4): across the whole occupancy
        // range the throughput reduction stays at 20% or less — SRF
        // contention, not inter-cluster traffic, dominates, so one shared
        // network suffices. Our decoupling buffers hide the contention
        // almost completely (see EXPERIMENTS.md).
        let busy = crosslane_throughput(1, 80, 3000);
        assert!(
            busy >= 0.8 * p1,
            "reduction exceeds the paper's 20% bound: {busy} vs {p1}"
        );
    }
}
