//! Sparse-graph BFS — a generalization of the IG benchmark
//! ([`crate::igraph`]) to much larger graphs with *irregular* degrees:
//! isolated nodes, variable fan-in, and a fraction of long-range edges
//! that defeat the IG window locality.
//!
//! Level-synchronous BFS is run as iterated min-plus relaxation (Jacobi
//! sweeps): `new[v] = min(old[v], min_u(old[u] + 1))` over `v`'s
//! in-neighbors `u`, starting from `dist[0] = 0` and `INF` elsewhere.
//! The host determines the sweep count (to convergence, capped) and
//! every configuration runs exactly that many sweeps over alternating
//! level arrays, so the whole computation is a fixed stream program —
//! each sweep's frontier is implicit in the data, which is exactly the
//! irregular, value-dependent access the index network is for.
//!
//! * **Base/Cache**: each sweep gathers `old[u]` for every (padded)
//!   edge individually through the memory system.
//! * **ISRF**: each strip gathers only its *unique* referenced levels
//!   into a condensed array and the kernel reaches them with
//!   **cross-lane** indexed reads driven by a static pointer stream
//!   (pointers are degree data, identical across sweeps).
//!
//! Rows are padded to a common degree `pad`; padding entries point at a
//! sentinel `INF` slot appended to the level arrays, so `min` ignores
//! them without control flow. Distances are exact integers: results are
//! compared word-for-word against the host Jacobi.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

use isrf_core::config::ConfigName;
use isrf_core::stats::RunStats;
use isrf_core::word::Word;
use isrf_kernel::ir::{Kernel, KernelBuilder, StreamKind};
use isrf_mem::AddrPattern;
use isrf_sim::{StreamBinding, StreamProgram};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::common::{machine, schedule_for};

/// "Unreached" distance; survives `+ 1` per sweep without wrapping into
/// the sign bit (the cluster `min` is signed).
pub const INF: Word = 0x3FFF_FFFF;

/// Benchmark sizing and graph-shape knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BfsParams {
    /// Node count; a multiple of `strip_nodes`.
    pub nodes: u32,
    /// Maximum in-degree (degrees vary uniformly up to this).
    pub max_degree: u32,
    /// Percentage (0–100) of nodes with no in-edges at all.
    pub isolated_pct: u32,
    /// Neighbor-window half-width for local edges.
    pub window: u32,
    /// Percentage (0–100) of edges drawn uniformly from the whole
    /// graph instead of the window (long-range shortcuts; they keep the
    /// graph diameter — and the sweep count — small).
    pub long_pct: u32,
    /// Nodes per strip; a multiple of 8.
    pub strip_nodes: u32,
    /// Upper bound on the number of relaxation sweeps.
    pub max_sweeps: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BfsParams {
    fn default() -> Self {
        BfsParams {
            nodes: 512,
            max_degree: 8,
            isolated_pct: 10,
            window: 32,
            long_pct: 5,
            strip_nodes: 64,
            max_sweeps: 8,
            seed: 0x5eed_0022,
        }
    }
}

/// Generate the irregular in-adjacency: `adj[v]` lists the sources `u`
/// feeding `v`'s relaxation.
pub fn generate(params: &BfsParams) -> Vec<Vec<u32>> {
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let n = params.nodes;
    (0..n)
        .map(|v| {
            if rng.gen_range(0u32..100) < params.isolated_pct {
                return Vec::new();
            }
            let deg = rng.gen_range(1..=params.max_degree.max(1));
            (0..deg)
                .map(|_| {
                    if rng.gen_range(0u32..100) < params.long_pct {
                        rng.gen_range(0..n)
                    } else {
                        let off = rng.gen_range(-(params.window as i32)..=params.window as i32);
                        (v as i32 + off).rem_euclid(n as i32) as u32
                    }
                })
                .collect()
        })
        .collect()
}

/// One Jacobi sweep of `new[v] = min(old[v], min_u(old[u] + 1))`.
fn sweep(adj: &[Vec<u32>], old: &[Word]) -> Vec<Word> {
    adj.iter()
        .enumerate()
        .map(|(v, srcs)| {
            let mut best = old[v];
            for &u in srcs {
                best = best.min(old[u as usize] + 1);
            }
            best
        })
        .collect()
}

/// Host reference: `sweeps` Jacobi sweeps from the canonical start
/// state (`dist[0] = 0`, `INF` elsewhere).
pub fn reference(adj: &[Vec<u32>], sweeps: u32) -> Vec<Word> {
    let mut dist: Vec<Word> = (0..adj.len())
        .map(|v| if v == 0 { 0 } else { INF })
        .collect();
    for _ in 0..sweeps {
        dist = sweep(adj, &dist);
    }
    dist
}

/// The host-side plan: graph, padded gather metadata per strip, and the
/// convergence-derived sweep count shared by every configuration.
struct Plan {
    adj: Vec<Vec<u32>>,
    /// Relaxation sweeps to run (to convergence, capped at
    /// `max_sweeps`, at least 1).
    sweeps: u32,
    /// Common padded degree (multiple of 4).
    pad: u32,
    strips: Vec<Strip>,
}

/// Per-strip gather metadata. Gather targets are *node indices* (the
/// level arrays alternate, so actual addresses are `base + node`);
/// index `nodes` is the appended `INF` sentinel the padding points at.
struct Strip {
    ptr_words: Vec<Word>,
    unique_nodes: Vec<u32>,
    replicated_nodes: Vec<u32>,
}

type PlanKey = (u64, u32, u32, u32, u32, u32, u32, u32);

fn plan_key(p: &BfsParams) -> PlanKey {
    (
        p.seed,
        p.nodes,
        p.max_degree,
        p.isolated_pct,
        p.window,
        p.long_pct,
        p.strip_nodes,
        p.max_sweeps,
    )
}

fn plan_cached(params: &BfsParams) -> Arc<Plan> {
    static MEMO: OnceLock<Mutex<BTreeMap<PlanKey, Arc<Plan>>>> = OnceLock::new();
    let memo = MEMO.get_or_init(|| Mutex::new(BTreeMap::new()));
    if let Some(hit) = memo.lock().unwrap().get(&plan_key(params)) {
        return Arc::clone(hit);
    }

    let adj = generate(params);
    let n = params.nodes;
    // Sweep count: relax until a sweep changes nothing, capped.
    let mut dist: Vec<Word> = (0..n).map(|v| if v == 0 { 0 } else { INF }).collect();
    let mut sweeps = 1u32;
    while sweeps < params.max_sweeps {
        let next = sweep(&adj, &dist);
        if next == dist {
            break;
        }
        dist = next;
        sweeps += 1;
    }

    let pad = adj
        .iter()
        .map(|s| s.len() as u32)
        .max()
        .unwrap_or(0)
        .next_multiple_of(4)
        .max(4);
    let strip_n = params.strip_nodes;
    let mut strips = Vec::with_capacity((n / strip_n) as usize);
    for s in 0..n / strip_n {
        let mut ptr_words = Vec::with_capacity((strip_n * pad) as usize);
        // Record 0 is always the INF sentinel at node index `n`.
        let mut unique_nodes = vec![n];
        let mut pos: BTreeMap<u32, u32> = BTreeMap::new();
        pos.insert(n, 0);
        let mut replicated_nodes = Vec::new();
        for v in s * strip_n..(s + 1) * strip_n {
            let srcs = &adj[v as usize];
            for k in 0..pad as usize {
                let u = srcs.get(k).copied().unwrap_or(n);
                let p = *pos.entry(u).or_insert_with(|| {
                    unique_nodes.push(u);
                    unique_nodes.len() as u32 - 1
                });
                ptr_words.push(p);
                replicated_nodes.push(u);
            }
        }
        strips.push(Strip {
            ptr_words,
            unique_nodes,
            replicated_nodes,
        });
    }

    let fresh = Arc::new(Plan {
        adj,
        sweeps,
        pad,
        strips,
    });
    let mut guard = memo.lock().unwrap();
    Arc::clone(guard.entry(plan_key(params)).or_insert(fresh))
}

/// Build the relaxation kernel: one node per lane per iteration, `pad`
/// `min(acc, level + 1)` slots. With `indexed`, neighbor levels come
/// from cross-lane indexed reads of the condensed array; otherwise they
/// arrive pre-gathered on a sequential stream.
pub fn build_kernel(pad: u32, indexed: bool) -> Kernel {
    assert!(pad.is_multiple_of(4) && pad >= 4);
    let mut b = KernelBuilder::new(format!(
        "bfs_p{pad}_{}",
        if indexed { "isrf" } else { "base" }
    ));
    let node = b.stream("node", StreamKind::SeqIn);
    let ptr = b.stream("ptr", StreamKind::SeqIn);
    let nstreams = if indexed {
        (pad as usize).div_ceil(4)
    } else {
        1
    };
    let lvls: Vec<_> = if indexed {
        (0..nstreams)
            .map(|k| b.stream(format!("lvl{k}"), StreamKind::IdxCrossRead))
            .collect()
    } else {
        vec![b.stream("gathered", StreamKind::SeqIn)]
    };
    let out = b.stream("out", StreamKind::SeqOut);

    let lv = b.seq_read(node);
    let one = b.constant(1);
    let mut acc = b.constant(INF);
    for k in 0..pad {
        let nl = if indexed {
            let p = b.seq_read(ptr);
            b.idx_load(lvls[(k as usize) % nstreams], p)
        } else {
            // The pointer stream is still consumed (the gather used it),
            // but the kernel reads levels directly.
            let _p = b.seq_read(ptr);
            b.seq_read(lvls[0])
        };
        let relaxed = b.add(nl, one);
        acc = b.min(acc, relaxed);
    }
    let res = b.min(lv, acc);
    b.seq_write(out, res);
    b.build().expect("BFS kernel is well-formed")
}

const LA_BASE: u32 = 0; // level array A (n + 1 words, sentinel last)
const LB_BASE: u32 = 0x8_0000; // level array B
const PTR_BASE: u32 = 0x10_0000; // padded condensed pointers, strip-major

/// Set up the machine and build the full multi-sweep program without
/// running it.
///
/// # Panics
///
/// Panics if `strip_nodes` is not a positive multiple of 8 dividing
/// `nodes`.
pub fn prepare(cfg: ConfigName, params: &BfsParams) -> crate::common::Prepared {
    assert!(params.strip_nodes.is_multiple_of(8) && params.strip_nodes > 0);
    assert!(params.nodes.is_multiple_of(params.strip_nodes) && params.nodes > 0);
    let indexed = matches!(cfg, ConfigName::Isrf1 | ConfigName::Isrf4);
    let mut m = machine(cfg);
    let cacheable = m.config().cache.is_some();

    let plan = plan_cached(params);
    let (n, strip_n, pad) = (params.nodes, params.strip_nodes, plan.pad);
    let kernel = Arc::new(build_kernel(pad, indexed));
    let sched = schedule_for(&m, &kernel);

    // Both level arrays start from the canonical state, with the INF
    // sentinel appended; pointers are static across sweeps.
    let mut init: Vec<Word> = (0..n).map(|v| if v == 0 { 0 } else { INF }).collect();
    init.push(INF);
    m.mem_mut().memory_mut().write_block(LA_BASE, &init);
    m.mem_mut().memory_mut().write_block(LB_BASE, &init);
    for (s, strip) in plan.strips.iter().enumerate() {
        m.mem_mut()
            .memory_mut()
            .write_block(PTR_BASE + s as u32 * strip_n * pad, &strip.ptr_words);
    }

    // Streams (double-buffered across strips).
    let mk = |m: &mut isrf_sim::Machine| {
        (
            m.alloc_stream(1, strip_n),   // current levels of the strip
            m.alloc_stream(pad, strip_n), // pointer records
            m.alloc_stream(1, strip_n),   // relaxed levels out
        )
    };
    let bufs = [mk(&mut m), mk(&mut m)];
    let cap = plan
        .strips
        .iter()
        .map(|s| s.unique_nodes.len() as u32)
        .max()
        .unwrap_or(1);
    let lvl_bufs = if indexed {
        [m.alloc_stream(1, cap), m.alloc_stream(1, cap)]
    } else {
        [m.alloc_stream(pad, strip_n), m.alloc_stream(pad, strip_n)]
    };

    let mut p = StreamProgram::new();
    let mut buf_free: [Option<isrf_sim::ProgOpId>; 2] = [None, None];
    let mut prev_kernel: Option<isrf_sim::ProgOpId> = None;
    // Barrier between sweeps: sweep t reads what sweep t-1 wrote.
    let mut prev_sweep_stores: Vec<isrf_sim::ProgOpId> = Vec::new();
    for t in 0..plan.sweeps {
        let (cur, nxt) = if t % 2 == 0 {
            (LA_BASE, LB_BASE)
        } else {
            (LB_BASE, LA_BASE)
        };
        let mut sweep_stores = Vec::with_capacity(plan.strips.len());
        for (s, strip) in plan.strips.iter().enumerate() {
            let pick = s % 2;
            let (node_b, ptr_b, out_b) = bufs[pick];
            let lb = lvl_bufs[pick];
            let mut ldeps = prev_sweep_stores.clone();
            if let Some(u) = buf_free[pick] {
                ldeps.push(u);
            }
            let first = s as u32 * strip_n;
            let l_node = p.load(
                AddrPattern::contiguous(cur + first, strip_n),
                node_b,
                false,
                &ldeps,
            );
            let l_ptr = p.load(
                AddrPattern::contiguous(PTR_BASE + first * pad, strip_n * pad),
                ptr_b,
                false,
                &ldeps,
            );
            let uniq = strip.unique_nodes.len() as u32;
            let (l_lvl, lvl_binding) = if indexed {
                let addrs = strip.unique_nodes.iter().map(|&u| cur + u).collect();
                (
                    p.load(
                        AddrPattern::Indexed(addrs),
                        lb.slice(0, uniq),
                        cacheable,
                        &ldeps,
                    ),
                    // The kernel addresses the condensed array by record.
                    StreamBinding::whole(lb.range, 1, uniq),
                )
            } else {
                let addrs = strip.replicated_nodes.iter().map(|&u| cur + u).collect();
                (
                    p.load(AddrPattern::Indexed(addrs), lb, cacheable, &ldeps),
                    lb,
                )
            };
            let mut kdeps = vec![l_node, l_ptr, l_lvl];
            if let Some(k) = prev_kernel {
                kdeps.push(k);
            }
            let nstreams = if indexed {
                (pad as usize).div_ceil(4)
            } else {
                1
            };
            let mut bindings = vec![node_b, ptr_b];
            bindings.extend(std::iter::repeat_n(lvl_binding, nstreams));
            bindings.push(out_b);
            let k = p.kernel(
                Arc::clone(&kernel),
                sched.clone(),
                bindings,
                (strip_n / 8) as u64,
                &kdeps,
            );
            let st = p.store(
                out_b,
                AddrPattern::contiguous(nxt + first, strip_n),
                false,
                &[k],
            );
            prev_kernel = Some(k);
            buf_free[pick] = Some(st);
            sweep_stores.push(st);
        }
        prev_sweep_stores = sweep_stores;
    }
    let final_base = if plan.sweeps % 2 == 1 {
        LB_BASE
    } else {
        LA_BASE
    };
    crate::common::Prepared::new(m, p, vec![(final_base, n)])
}

/// Run the BFS on `cfg`; the final level array is verified word-for-word
/// against the host Jacobi.
///
/// # Panics
///
/// Panics if the simulated distances differ from the host reference.
pub fn run(cfg: ConfigName, params: &BfsParams) -> RunStats {
    let plan = plan_cached(params);
    let mut pr = prepare(cfg, params);
    let stats = pr.machine.run(&pr.program);
    let expect = reference(&plan.adj, plan.sweeps);
    let base = pr.outputs[0].0;
    for (v, &e) in expect.iter().enumerate() {
        let got = pr.machine.mem().memory().read(base + v as u32);
        assert_eq!(got, e, "node {v}: got {got}, want {e}");
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> BfsParams {
        BfsParams {
            nodes: 256,
            max_degree: 6,
            isolated_pct: 15,
            window: 24,
            long_pct: 8,
            strip_nodes: 32,
            max_sweeps: 6,
            seed: 23,
        }
    }

    #[test]
    fn kernels_build_and_schedule() {
        let m = machine(ConfigName::Isrf4);
        schedule_for(&m, &build_kernel(8, true));
        let m = machine(ConfigName::Base);
        schedule_for(&m, &build_kernel(8, false));
    }

    #[test]
    fn base_functional() {
        run(ConfigName::Base, &small());
    }

    #[test]
    fn isrf_functional() {
        run(ConfigName::Isrf4, &small());
    }

    #[test]
    fn cache_functional() {
        run(ConfigName::Cache, &small());
    }

    #[test]
    fn source_reaches_neighborhood_but_not_isolated_nodes() {
        let params = small();
        let plan = plan_cached(&params);
        let dist = reference(&plan.adj, plan.sweeps);
        assert_eq!(dist[0], 0);
        assert!(
            dist.iter().filter(|&&d| d < INF).count() > 1,
            "some nodes are reached"
        );
        // An isolated node other than the source must stay at INF.
        let isolated = (1..params.nodes)
            .find(|&v| plan.adj[v as usize].is_empty())
            .expect("isolated_pct > 0 yields isolated nodes");
        assert_eq!(dist[isolated as usize], INF);
    }

    #[test]
    fn isrf_reduces_traffic_via_deduplication() {
        let base = run(ConfigName::Base, &small());
        let isrf = run(ConfigName::Isrf4, &small());
        let ratio = isrf.mem.normalized_to(&base.mem);
        assert!(ratio < 0.95, "traffic ratio {ratio:.3}");
        assert!(isrf.srf.crosslane_words > 0, "gathers are cross-lane");
        assert_eq!(isrf.srf.inlane_words, 0);
    }
}
