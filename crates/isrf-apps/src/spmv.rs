//! Sparse matrix-vector product (SpMV) over CSR — the sparse-dense
//! workload the Sparse-SSR line of work targets with indirect stream
//! registers (see PAPERS.md).
//!
//! `y = A * x` with `A` in compressed-sparse-row form. Rows are processed
//! in strips of `strip_rows` (one row per lane per kernel iteration); the
//! host pads every row to a common entry count `pad` (a multiple of 4) so
//! the kernel loop is regular, and prepares per-strip gather metadata:
//!
//! * **Base/Cache**: the memory system gathers `x[col]` for every stored
//!   entry individually (the replicated gather); an `x` entry referenced
//!   by several rows of the strip is fetched — and parked in the SRF —
//!   once *per reference*.
//! * **ISRF**: only the strip's *unique* referenced `x` entries are
//!   gathered into a condensed array; the kernel reaches them through the
//!   **cross-lane** index network, driven by a host-prepared pointer
//!   stream into the condensed array (row entries live in whichever bank
//!   holds the unique record, not the row's lane).
//!
//! Padding entries carry a 0.0 matrix value and point at the condensed
//! sentinel record 0 (`x[0]`), so empty and short rows are handled with
//! no control flow. The host reference mirrors the padded accumulation
//! order exactly, so results are compared **bit-for-bit**.
//!
//! The generator is deterministic in the parameter struct: banded random
//! matrices with controllable density (`avg_nnz`), locality
//! (`bandwidth`), and a controllable fraction of entirely empty rows.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

use isrf_core::config::ConfigName;
use isrf_core::stats::RunStats;
use isrf_core::word::{from_f32, Word};
use isrf_kernel::ir::{Kernel, KernelBuilder, StreamKind};
use isrf_mem::AddrPattern;
use isrf_sim::{StreamBinding, StreamProgram};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::common::{machine, schedule_for};

/// Benchmark sizing and matrix-shape knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpmvParams {
    /// Matrix dimension (square, `rows` = `cols`); must be a multiple of
    /// `strip_rows`.
    pub rows: u32,
    /// Average stored entries per non-empty row (density knob).
    pub avg_nnz: u32,
    /// Column half-bandwidth: row `i` references columns within
    /// `i ± bandwidth` (modulo `rows`) — the locality the condensed
    /// gather exploits.
    pub bandwidth: u32,
    /// Percentage (0–100) of rows left entirely empty.
    pub empty_pct: u32,
    /// Rows per strip; a multiple of 8 dividing `rows`.
    pub strip_rows: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SpmvParams {
    fn default() -> Self {
        SpmvParams {
            rows: 512,
            avg_nnz: 8,
            bandwidth: 48,
            empty_pct: 10,
            strip_rows: 64,
            seed: 0x5eed_0020,
        }
    }
}

/// A CSR matrix with f32 values. `row_ptr` has `rows + 1` entries;
/// row `i`'s stored entries are `col_idx[row_ptr[i]..row_ptr[i+1]]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    /// Row count.
    pub rows: u32,
    /// Column count (the length of `x`).
    pub cols: u32,
    /// Row start offsets, `rows + 1` entries.
    pub row_ptr: Vec<u32>,
    /// Column index per stored entry.
    pub col_idx: Vec<u32>,
    /// Value per stored entry.
    pub vals: Vec<f32>,
}

impl Csr {
    /// Stored entries in row `i`.
    pub fn row(&self, i: u32) -> (&[u32], &[f32]) {
        let lo = self.row_ptr[i as usize] as usize;
        let hi = self.row_ptr[i as usize + 1] as usize;
        (&self.col_idx[lo..hi], &self.vals[lo..hi])
    }

    /// The largest row length.
    pub fn max_nnz(&self) -> u32 {
        (0..self.rows)
            .map(|i| self.row(i).0.len() as u32)
            .max()
            .unwrap_or(0)
    }
}

/// Deterministic banded sparse matrix + dense vector for `params`.
///
/// Column indices are drawn from the band `i ± bandwidth` (mod `rows`),
/// deduplicated and sorted per row; values and `x` entries are bounded
/// away from zero so every product is informative.
pub fn generate(params: &SpmvParams) -> (Csr, Vec<f32>) {
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let n = params.rows;
    let mut row_ptr = Vec::with_capacity(n as usize + 1);
    let mut col_idx = Vec::new();
    let mut vals = Vec::new();
    row_ptr.push(0);
    for i in 0..n {
        if rng.gen_range(0u32..100) >= params.empty_pct {
            let want = rng.gen_range(1..=2 * params.avg_nnz.max(1) - 1);
            let mut cols: Vec<u32> = (0..want)
                .map(|_| {
                    let off = rng.gen_range(-(params.bandwidth as i32)..=params.bandwidth as i32);
                    (i as i32 + off).rem_euclid(n as i32) as u32
                })
                .collect();
            cols.sort_unstable();
            cols.dedup();
            for c in cols {
                col_idx.push(c);
                vals.push(rng.gen_range(0.1f32..1.0));
            }
        }
        row_ptr.push(col_idx.len() as u32);
    }
    let x = (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let csr = Csr {
        rows: n,
        cols: n,
        row_ptr,
        col_idx,
        vals,
    };
    (csr, x)
}

type GenKey = (u64, u32, u32, u32, u32, u32);

fn gen_key(p: &SpmvParams) -> GenKey {
    (
        p.seed,
        p.rows,
        p.avg_nnz,
        p.bandwidth,
        p.empty_pct,
        p.strip_rows,
    )
}

/// [`generate`], memoized: every configuration (and the host reference)
/// of a parameter point shares one matrix.
fn generate_cached(params: &SpmvParams) -> Arc<(Csr, Vec<f32>)> {
    #[allow(clippy::type_complexity)]
    static MEMO: OnceLock<Mutex<BTreeMap<GenKey, Arc<(Csr, Vec<f32>)>>>> = OnceLock::new();
    let memo = MEMO.get_or_init(|| Mutex::new(BTreeMap::new()));
    if let Some(hit) = memo.lock().unwrap().get(&gen_key(params)) {
        return Arc::clone(hit);
    }
    let fresh = Arc::new(generate(params));
    let mut guard = memo.lock().unwrap();
    Arc::clone(guard.entry(gen_key(params)).or_insert(fresh))
}

/// Common padded row length for `csr`: the longest row, rounded up to a
/// multiple of 4 (so cross-lane accesses split into full address-FIFO
/// groups), at least 4.
pub fn pad_of(csr: &Csr) -> u32 {
    csr.max_nnz().next_multiple_of(4).max(4)
}

/// Host-prepared gather metadata for one strip.
struct Strip {
    /// Condensed pointer words, `strip_rows * pad` entries (row-major).
    ptr_words: Vec<Word>,
    /// Padded matrix values, `strip_rows * pad` entries (row-major).
    val_words: Vec<Word>,
    /// Gather addresses of the strip's unique `x` records (record 0 is
    /// the `x[0]` sentinel the padding points at).
    unique_addrs: Vec<u32>,
    /// Per-reference gather addresses for the Base configurations.
    replicated_addrs: Vec<u32>,
}

const X_BASE: u32 = 0; // the dense vector
const VAL_BASE: u32 = 0x10_0000; // padded matrix values, strip-major
const PTR_BASE: u32 = 0x30_0000; // padded condensed pointers, strip-major
const Y_BASE: u32 = 0x40_0000; // the result vector

fn host_strips(csr: &Csr, strip_rows: u32, pad: u32) -> Vec<Strip> {
    let strips = csr.rows / strip_rows;
    let mut out = Vec::with_capacity(strips as usize);
    for s in 0..strips {
        let mut ptr_words = Vec::with_capacity((strip_rows * pad) as usize);
        let mut val_words = Vec::with_capacity((strip_rows * pad) as usize);
        // Record 0 is always x[0]: the sentinel the padding entries
        // multiply by 0.0, valid even for an all-empty strip.
        let mut unique_addrs = vec![X_BASE];
        let mut pos: BTreeMap<u32, u32> = BTreeMap::new();
        pos.insert(0, 0);
        let mut replicated_addrs = Vec::new();
        for i in s * strip_rows..(s + 1) * strip_rows {
            let (cols, vals) = csr.row(i);
            for k in 0..pad as usize {
                let (col, v) = if k < cols.len() {
                    (cols[k], vals[k])
                } else {
                    (0, 0.0)
                };
                let p = *pos.entry(col).or_insert_with(|| {
                    unique_addrs.push(X_BASE + col);
                    unique_addrs.len() as u32 - 1
                });
                ptr_words.push(p);
                val_words.push(from_f32(v));
                replicated_addrs.push(X_BASE + col);
            }
        }
        out.push(Strip {
            ptr_words,
            val_words,
            unique_addrs,
            replicated_addrs,
        });
    }
    out
}

/// Host reference mirroring the padded accumulation order bit-for-bit:
/// `acc = acc + v * xv` over all `pad` slots per row, padding slots
/// contributing `0.0 * x[0]`.
pub fn reference(csr: &Csr, x: &[f32], pad: u32) -> Vec<f32> {
    (0..csr.rows)
        .map(|i| {
            let (cols, vals) = csr.row(i);
            let mut acc = 0.0f32;
            for k in 0..pad as usize {
                let (v, xv) = if k < cols.len() {
                    (vals[k], x[cols[k] as usize])
                } else {
                    (0.0, x[0])
                };
                acc += v * xv;
            }
            acc
        })
        .collect()
}

/// Build the per-strip kernel: one row per lane per iteration, `pad`
/// multiply-accumulate slots. With `indexed`, `x` values come from
/// cross-lane indexed reads of the condensed array (spread over
/// `pad / 4` streams so each stays within the address FIFO); otherwise
/// they arrive pre-gathered on a sequential stream.
pub fn build_kernel(pad: u32, indexed: bool) -> Kernel {
    assert!(pad.is_multiple_of(4) && pad >= 4);
    let mut b = KernelBuilder::new(format!(
        "spmv_p{pad}_{}",
        if indexed { "isrf" } else { "base" }
    ));
    let ptr = b.stream("ptr", StreamKind::SeqIn);
    let vals = b.stream("vals", StreamKind::SeqIn);
    let nstreams = if indexed {
        (pad as usize).div_ceil(4)
    } else {
        1
    };
    let xs: Vec<_> = if indexed {
        (0..nstreams)
            .map(|k| b.stream(format!("x{k}"), StreamKind::IdxCrossRead))
            .collect()
    } else {
        vec![b.stream("gathered", StreamKind::SeqIn)]
    };
    let y = b.stream("y", StreamKind::SeqOut);

    let zero = b.constant_f(0.0);
    let mut acc = zero;
    for k in 0..pad {
        let xv = if indexed {
            let p = b.seq_read(ptr);
            b.idx_load(xs[(k as usize) % nstreams], p)
        } else {
            // The pointer stream is still consumed (the gather used it),
            // but the kernel reads values directly.
            let _p = b.seq_read(ptr);
            b.seq_read(xs[0])
        };
        let v = b.seq_read(vals);
        let prod = b.fmul(v, xv);
        acc = b.fadd(acc, prod);
    }
    b.seq_write(y, acc);
    b.build().expect("SpMV kernel is well-formed")
}

/// Set up the machine and build the measured program for an explicit
/// matrix and vector (the proptest entry point — [`prepare`] feeds the
/// deterministic generator through here).
///
/// # Panics
///
/// Panics if `strip_rows` is not a positive multiple of 8 dividing
/// `csr.rows`, or `x.len() != csr.cols`.
pub fn prepare_csr(
    cfg: ConfigName,
    csr: &Csr,
    x: &[f32],
    strip_rows: u32,
) -> crate::common::Prepared {
    assert!(strip_rows.is_multiple_of(8) && strip_rows > 0);
    assert!(csr.rows.is_multiple_of(strip_rows) && csr.rows > 0);
    assert_eq!(x.len() as u32, csr.cols);
    let indexed = matches!(cfg, ConfigName::Isrf1 | ConfigName::Isrf4);
    let mut m = machine(cfg);
    let cacheable = m.config().cache.is_some();

    let pad = pad_of(csr);
    let kernel = Arc::new(build_kernel(pad, indexed));
    let sched = schedule_for(&m, &kernel);

    let strips = host_strips(csr, strip_rows, pad);
    let x_words: Vec<Word> = x.iter().map(|&v| from_f32(v)).collect();
    m.mem_mut().memory_mut().write_block(X_BASE, &x_words);
    for (s, strip) in strips.iter().enumerate() {
        let off = s as u32 * strip_rows * pad;
        m.mem_mut()
            .memory_mut()
            .write_block(VAL_BASE + off, &strip.val_words);
        m.mem_mut()
            .memory_mut()
            .write_block(PTR_BASE + off, &strip.ptr_words);
    }

    // Streams (double-buffered across strips).
    let mk = |m: &mut isrf_sim::Machine| {
        (
            m.alloc_stream(pad, strip_rows), // pointer records
            m.alloc_stream(pad, strip_rows), // matrix-value records
            m.alloc_stream(1, strip_rows),   // y records
        )
    };
    let bufs = [mk(&mut m), mk(&mut m)];
    // x entries: condensed unique (ISRF) or replicated per entry (Base).
    let x_cap = strips
        .iter()
        .map(|s| s.unique_addrs.len() as u32)
        .max()
        .unwrap_or(1);
    let x_bufs = if indexed {
        [m.alloc_stream(1, x_cap), m.alloc_stream(1, x_cap)]
    } else {
        [
            m.alloc_stream(pad, strip_rows),
            m.alloc_stream(pad, strip_rows),
        ]
    };

    let mut p = StreamProgram::new();
    let mut buf_free: [Option<isrf_sim::ProgOpId>; 2] = [None, None];
    let mut prev_kernel: Option<isrf_sim::ProgOpId> = None;
    for (s, strip) in strips.iter().enumerate() {
        let pick = s % 2;
        let (ptr_b, val_b, y_b) = bufs[pick];
        let xb = x_bufs[pick];
        let mut ldeps: Vec<isrf_sim::ProgOpId> = Vec::new();
        if let Some(u) = buf_free[pick] {
            ldeps.push(u);
        }
        let off = s as u32 * strip_rows * pad;
        let l_ptr = p.load(
            AddrPattern::contiguous(PTR_BASE + off, strip_rows * pad),
            ptr_b,
            false,
            &ldeps,
        );
        let l_val = p.load(
            AddrPattern::contiguous(VAL_BASE + off, strip_rows * pad),
            val_b,
            false,
            &ldeps,
        );
        let uniq = strip.unique_addrs.len() as u32;
        let (l_x, x_binding) = if indexed {
            (
                p.load(
                    AddrPattern::Indexed(strip.unique_addrs.clone()),
                    xb.slice(0, uniq),
                    cacheable,
                    &ldeps,
                ),
                // The kernel addresses the condensed array by record.
                StreamBinding::whole(xb.range, 1, uniq),
            )
        } else {
            (
                p.load(
                    AddrPattern::Indexed(strip.replicated_addrs.clone()),
                    xb,
                    cacheable,
                    &ldeps,
                ),
                xb,
            )
        };
        let mut kdeps = vec![l_ptr, l_val, l_x];
        if let Some(k) = prev_kernel {
            kdeps.push(k);
        }
        let nstreams = if indexed {
            (pad as usize).div_ceil(4)
        } else {
            1
        };
        let mut bindings = vec![ptr_b, val_b];
        bindings.extend(std::iter::repeat_n(x_binding, nstreams));
        bindings.push(y_b);
        let k = p.kernel(
            Arc::clone(&kernel),
            sched.clone(),
            bindings,
            (strip_rows / 8) as u64,
            &kdeps,
        );
        let st = p.store(
            y_b,
            AddrPattern::contiguous(Y_BASE + s as u32 * strip_rows, strip_rows),
            false,
            &[k],
        );
        prev_kernel = Some(k);
        buf_free[pick] = Some(st);
    }
    crate::common::Prepared::new(m, p, vec![(Y_BASE, csr.rows)])
}

/// Set up the machine (generated matrix) and build the measured program
/// without running it.
pub fn prepare(cfg: ConfigName, params: &SpmvParams) -> crate::common::Prepared {
    let data = generate_cached(params);
    prepare_csr(cfg, &data.0, &data.1, params.strip_rows)
}

/// Run `y = A * x` on `cfg`; verified bit-for-bit against the padded
/// host reference.
///
/// # Panics
///
/// Panics if the simulated result differs from the host reference in any
/// bit.
pub fn run(cfg: ConfigName, params: &SpmvParams) -> RunStats {
    let data = generate_cached(params);
    let (csr, x) = (&data.0, &data.1);
    let mut pr = prepare_csr(cfg, csr, x, params.strip_rows);
    let stats = pr.machine.run(&pr.program);
    let expect = reference(csr, x, pad_of(csr));
    for (i, &e) in expect.iter().enumerate() {
        let got = pr.machine.mem().memory().read(Y_BASE + i as u32);
        assert_eq!(
            got,
            from_f32(e),
            "row {i}: got {:?}, want {e:?} (bit-exact mirror)",
            isrf_core::word::as_f32(got)
        );
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SpmvParams {
        SpmvParams {
            rows: 256,
            avg_nnz: 6,
            bandwidth: 32,
            empty_pct: 15,
            strip_rows: 32,
            seed: 21,
        }
    }

    #[test]
    fn kernels_build_and_schedule() {
        let m = machine(ConfigName::Isrf4);
        schedule_for(&m, &build_kernel(8, true));
        let m = machine(ConfigName::Base);
        schedule_for(&m, &build_kernel(8, false));
    }

    #[test]
    fn base_functional() {
        run(ConfigName::Base, &small());
    }

    #[test]
    fn isrf_functional() {
        run(ConfigName::Isrf4, &small());
    }

    #[test]
    fn cache_functional() {
        run(ConfigName::Cache, &small());
    }

    #[test]
    fn isrf1_functional() {
        run(ConfigName::Isrf1, &small());
    }

    #[test]
    fn empty_rows_produce_exact_zero() {
        let params = SpmvParams {
            empty_pct: 100,
            ..small()
        };
        let data = generate_cached(&params);
        let mut pr = prepare_csr(ConfigName::Isrf4, &data.0, &data.1, params.strip_rows);
        pr.machine.run(&pr.program);
        for i in 0..params.rows {
            assert_eq!(pr.machine.mem().memory().read(Y_BASE + i), 0);
        }
    }

    #[test]
    fn isrf_reduces_traffic_via_deduplication() {
        // A denser band makes x entries shared across strip rows, so the
        // condensed gather moves fewer words than the replicated one.
        let params = SpmvParams {
            avg_nnz: 10,
            bandwidth: 16,
            empty_pct: 0,
            ..small()
        };
        let base = run(ConfigName::Base, &params);
        let isrf = run(ConfigName::Isrf4, &params);
        let ratio = isrf.mem.normalized_to(&base.mem);
        assert!(ratio < 0.9, "traffic ratio {ratio:.3}");
        assert!(isrf.srf.crosslane_words > 0, "gathers are cross-lane");
        assert_eq!(isrf.srf.inlane_words, 0);
    }

    #[test]
    fn single_column_matrix_works() {
        // Every stored entry in column 0: the pathological all-conflict
        // gather (every lane hits bank 0).
        let n = 64u32;
        let csr = Csr {
            rows: n,
            cols: n,
            row_ptr: (0..=n).collect(),
            col_idx: vec![0; n as usize],
            vals: (0..n).map(|i| 0.5 + i as f32 / 100.0).collect(),
        };
        let x: Vec<f32> = (0..n).map(|i| 1.0 - i as f32 / 50.0).collect();
        let mut pr = prepare_csr(ConfigName::Isrf4, &csr, &x, 8);
        pr.machine.run(&pr.program);
        let expect = reference(&csr, &x, pad_of(&csr));
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(
                pr.machine.mem().memory().read(Y_BASE + i as u32),
                from_f32(e)
            );
        }
    }
}
