//! Read-write data structures in the SRF — the paper's Section 7 future
//! work, realized: "read-write data structures allow even more flexibility
//! for application-specific tasks".
//!
//! Each cluster keeps a private histogram in its SRF bank and updates it
//! with an in-lane indexed **read-modify-write** per key: load the bin,
//! increment, store it back through an indexed write stream bound to the
//! *same* region.
//!
//! Unlike streams (read-only or write-only for a kernel's duration),
//! read-write structures expose a genuine hazard: an update is only
//! visible to reads serviced *after* its write drains through the address
//! FIFO. Software must therefore guarantee a minimum distance between
//! updates to the same address (here: keys are presented in permuted
//! blocks, so equal keys are `buckets` iterations apart — far beyond the
//! FIFO + latency window). the `hazard_window_loses_updates` test demonstrates
//! what happens when that discipline is violated — the motivation for the
//! hardware interlocks the paper leaves to future work.

use std::sync::Arc;

use isrf_core::config::ConfigName;
use isrf_core::stats::RunStats;
use isrf_core::Word;
use isrf_kernel::ir::{Kernel, KernelBuilder, StreamKind};
use isrf_mem::AddrPattern;
use isrf_sim::{StreamBinding, StreamProgram};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::common::{machine, schedule_for};

/// Benchmark sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramParams {
    /// Number of bins per cluster (a power of two).
    pub buckets: u32,
    /// Keys processed per cluster.
    pub keys_per_lane: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HistogramParams {
    fn default() -> Self {
        HistogramParams {
            buckets: 256,
            keys_per_lane: 1024,
            seed: 0x5eed_0007,
        }
    }
}

/// The read-modify-write kernel: `bins[key] += 1` per iteration.
pub fn build_kernel() -> Kernel {
    let mut b = KernelBuilder::new("histogram");
    let keys = b.stream("keys", StreamKind::SeqIn);
    let bins_r = b.stream("bins_r", StreamKind::IdxInRead);
    let bins_w = b.stream("bins_w", StreamKind::IdxInWrite);
    let k = b.seq_read(keys);
    let v = b.idx_load(bins_r, k);
    let one = b.constant(1);
    let v1 = b.add(v, one);
    b.idx_write(bins_w, k, v1);
    b.build().expect("histogram kernel is well-formed")
}

const KEY_BASE: u32 = 0;
const OUT_BASE: u32 = 0x10_0000;

/// Generate hazard-free keys: each lane repeats one random permutation of
/// `0..buckets`, so equal keys are *exactly* `buckets` iterations apart —
/// far beyond the FIFO + latency window (independently shuffled blocks
/// would allow a key to sit last in one block and first in the next).
pub fn safe_keys(params: &HistogramParams) -> Vec<Word> {
    assert!(params.keys_per_lane.is_multiple_of(params.buckets));
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let mut out = vec![0u32; (params.keys_per_lane * 8) as usize];
    for lane in 0..8u32 {
        let mut block: Vec<u32> = (0..params.buckets).collect();
        block.shuffle(&mut rng);
        for i in 0..params.keys_per_lane {
            // Stream record r -> lane r % 8; lane's i-th key is record
            // i*8 + lane.
            out[(i * 8 + lane) as usize] = block[(i % params.buckets) as usize];
        }
    }
    out
}

/// Run the histogram with the given key stream; returns the stats and the
/// per-lane bins read back from the SRF.
pub fn run_with_keys(
    cfg: ConfigName,
    params: &HistogramParams,
    keys: &[Word],
) -> (RunStats, Vec<Vec<u32>>) {
    assert!(
        matches!(cfg, ConfigName::Isrf1 | ConfigName::Isrf4),
        "read-write SRF structures need an indexed SRF"
    );
    let mut m = machine(cfg);
    m.mem_mut().memory_mut().write_block(KEY_BASE, keys);
    let kernel = Arc::new(build_kernel());
    let sched = schedule_for(&m, &kernel);

    let n = params.keys_per_lane * 8;
    let key_stream = m.alloc_stream(1, n);
    // One region, bound both as the read and the write view.
    let bins = m.alloc_stream(1, params.buckets * 8);
    m.write_stream(&bins, &vec![0; (params.buckets * 8) as usize]);
    let bins_view = StreamBinding::whole(bins.range, 1, params.buckets * 8);

    let mut p = StreamProgram::new();
    let l = p.load(AddrPattern::contiguous(KEY_BASE, n), key_stream, false, &[]);
    let k = p.kernel(
        Arc::clone(&kernel),
        sched,
        vec![key_stream, bins_view, bins_view],
        params.keys_per_lane as u64,
        &[l],
    );
    p.store(
        bins,
        AddrPattern::contiguous(OUT_BASE, params.buckets * 8),
        false,
        &[k],
    );
    let stats = m.run(&p);

    // Global record r holds lane r%8's bin r/8.
    let mut lanes = vec![vec![0u32; params.buckets as usize]; 8];
    for r in 0..params.buckets * 8 {
        lanes[(r % 8) as usize][(r / 8) as usize] = m.mem().memory().read(OUT_BASE + r);
    }
    (stats, lanes)
}

/// Run with hazard-free keys and verify every count exactly.
pub fn run(cfg: ConfigName, params: &HistogramParams) -> RunStats {
    let keys = safe_keys(params);
    let (stats, lanes) = run_with_keys(cfg, params, &keys);
    // Each lane saw keys_per_lane/buckets full permutations.
    let expect = params.keys_per_lane / params.buckets;
    for (l, bins) in lanes.iter().enumerate() {
        for (bin, &count) in bins.iter().enumerate() {
            assert_eq!(count, expect, "lane {l} bin {bin}");
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> HistogramParams {
        HistogramParams {
            buckets: 64,
            keys_per_lane: 256,
            seed: 9,
        }
    }

    #[test]
    fn kernel_builds_and_schedules() {
        let m = machine(ConfigName::Isrf4);
        let s = schedule_for(&m, &build_kernel());
        assert!(s.ii >= 1);
    }

    #[test]
    fn exact_counts_with_safe_keys() {
        run(ConfigName::Isrf4, &small());
    }

    #[test]
    fn exact_counts_on_isrf1_too() {
        run(ConfigName::Isrf1, &small());
    }

    #[test]
    #[should_panic(expected = "indexed SRF")]
    fn rejects_sequential_machines() {
        run(ConfigName::Base, &small());
    }

    /// The hazard the paper's future work must solve: updates to the same
    /// address inside the FIFO + latency window read stale bins and lose
    /// counts. This pins the *model's* behaviour (it is the real
    /// hardware's behaviour absent interlocks).
    #[test]
    fn hazard_window_loses_updates() {
        let params = small();
        // Every lane hammers bin 0 on every iteration: maximal conflict.
        let keys = vec![0u32; (params.keys_per_lane * 8) as usize];
        let (_, lanes) = run_with_keys(ConfigName::Isrf4, &params, &keys);
        for bins in &lanes {
            assert!(
                bins[0] < params.keys_per_lane,
                "back-to-back RMW to one address must lose updates \
                 (got {} of {})",
                bins[0],
                params.keys_per_lane
            );
            assert!(bins[0] > 0, "some updates still land");
        }
    }
}
