//! The Irregular Graph (IG) synthetic benchmark — Section 5.2, Table 4.
//!
//! A static irregular graph: for every node, all neighbor values are read
//! and the node value updated (a Jacobi-style sweep). The graph is much
//! larger than the SRF, so nodes are processed in strips.
//!
//! * **Base/Cache**: the memory system gathers each node's neighbor-value
//!   records; a node referenced by several strip nodes is fetched (and
//!   stored in the SRF) once *per reference* — the intra-strip replication
//!   the paper highlights.
//! * **ISRF**: only the strip's *unique* referenced records are gathered
//!   into a condensed array; the kernel reaches them with **cross-lane**
//!   indexed reads ("no data is replicated across lanes, and therefore all
//!   indexed SRF accesses are cross-lane"), at the cost of an index
//!   (pointer) stream into the condensed array. Eliminating replication
//!   also roughly doubles the strip size in the same SRF budget (Table 4),
//!   amortizing kernel start/end overheads.
//!
//! Dataset knobs mirror Table 4: FP ops per neighbor (16 or 51), average
//! degree (4 or 16), and strip sizes chosen so both versions occupy about
//! the same SRF space. Neighbors are drawn from a window around each node,
//! giving the intra-strip locality the ISRF exploits. Results are verified
//! against a host-side sweep with identical f32 arithmetic.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

use isrf_core::config::ConfigName;
use isrf_core::stats::RunStats;
use isrf_core::word::{as_f32, from_f32, Word};
use isrf_kernel::ir::{Kernel, KernelBuilder, StreamKind, ValueId};
use isrf_mem::AddrPattern;
use isrf_sim::{StreamBinding, StreamProgram};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::common::{machine, schedule_for};

/// One IG dataset (a Table 4 row).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IgDataset {
    /// Dataset name as the paper spells it.
    pub name: &'static str,
    /// FP ops per neighbor record.
    pub fp_ops: u32,
    /// Degree (neighbors per node; the paper's average degree).
    pub degree: u32,
    /// Total nodes in the graph.
    pub nodes: u32,
    /// Nodes per strip on the Base configuration.
    pub base_strip_nodes: u32,
    /// Nodes per strip with the indexed SRF (about 2x: no replication).
    pub isrf_strip_nodes: u32,
    /// Neighbor-window half-width (locality of the graph).
    pub window: u32,
    /// RNG seed.
    pub seed: u64,
}

/// The four datasets of Table 4. Strip sizes in the paper are neighbor
/// records per invocation (1163/2316 sparse, 265/528 dense); divided by
/// the degree and rounded to lane multiples they become node counts.
pub const DATASETS: [IgDataset; 4] = [
    IgDataset {
        name: "IG_SML",
        fp_ops: 16,
        degree: 4,
        nodes: 4608,
        base_strip_nodes: 288,
        isrf_strip_nodes: 576,
        window: 64,
        seed: 0x5eed_0016,
    },
    IgDataset {
        name: "IG_SCL",
        fp_ops: 51,
        degree: 4,
        nodes: 4608,
        base_strip_nodes: 288,
        isrf_strip_nodes: 576,
        window: 64,
        seed: 0x5eed_0017,
    },
    IgDataset {
        name: "IG_DMS",
        fp_ops: 16,
        degree: 16,
        nodes: 1024,
        base_strip_nodes: 16,
        isrf_strip_nodes: 32,
        window: 16,
        seed: 0x5eed_0018,
    },
    IgDataset {
        name: "IG_DCS",
        fp_ops: 51,
        degree: 16,
        nodes: 1024,
        base_strip_nodes: 16,
        isrf_strip_nodes: 32,
        window: 16,
        seed: 0x5eed_0019,
    },
];

/// Look a dataset up by name.
pub fn dataset(name: &str) -> IgDataset {
    *DATASETS
        .iter()
        .find(|d| d.name == name)
        .unwrap_or_else(|| panic!("unknown IG dataset {name}"))
}

/// The generated graph: values (2-word records) and adjacency.
pub struct Graph {
    /// Per-node record `(v0, v1)`.
    pub values: Vec<(f32, f32)>,
    /// `adj[i]` lists node `i`'s neighbors.
    pub adj: Vec<Vec<u32>>,
}

/// Generate the synthetic graph: neighbors uniform in a window around each
/// node (modulo the node count), giving intra-strip locality.
pub fn generate(ds: &IgDataset) -> Graph {
    let mut rng = SmallRng::seed_from_u64(ds.seed);
    let n = ds.nodes;
    let values = (0..n)
        .map(|_| (rng.gen_range(-1.0f32..1.0), rng.gen_range(0.1f32..1.0)))
        .collect();
    let adj = (0..n)
        .map(|i| {
            (0..ds.degree)
                .map(|_| {
                    let off = rng.gen_range(-(ds.window as i32)..=ds.window as i32);
                    (i as i32 + off).rem_euclid(n as i32) as u32
                })
                .collect()
        })
        .collect();
    Graph { values, adj }
}

/// Everything that identifies a generated graph.
type GraphKey = (u64, u32, u32, u32);

fn graph_key(ds: &IgDataset) -> GraphKey {
    (ds.seed, ds.nodes, ds.degree, ds.window)
}

/// [`generate`], memoized per dataset: the sweep drivers run every
/// dataset on four configurations (plus the host reference a second
/// time per run), and generation is deterministic.
fn generate_cached(ds: &IgDataset) -> Arc<Graph> {
    static MEMO: OnceLock<Mutex<BTreeMap<GraphKey, Arc<Graph>>>> = OnceLock::new();
    let memo = MEMO.get_or_init(|| Mutex::new(BTreeMap::new()));
    if let Some(hit) = memo.lock().unwrap().get(&graph_key(ds)) {
        return Arc::clone(hit);
    }
    let fresh = Arc::new(generate(ds));
    let mut guard = memo.lock().unwrap();
    Arc::clone(guard.entry(graph_key(ds)).or_insert(fresh))
}

/// Host-side preprocessing of one strip (the graph preprocessing the
/// paper assigns to the host): the condensed pointer stream, the
/// unique-record gather list, and the per-reference (replicated) gather
/// list the Base configurations use.
struct Strip {
    ptr_words: Vec<Word>,
    unique_addrs: Vec<u32>,
    unique_records: u32,
    replicated_addrs: Vec<u32>,
}

/// The dataset's full host-prepared memory image for one strip size.
struct HostImage {
    val_words: Vec<Word>,
    adj_words: Vec<Word>,
    strips: Vec<Strip>,
}

/// Compute (or fetch) the host image for `ds` at `strip_nodes` nodes per
/// strip. Deterministic in the key, so it is shared across the four
/// machine configurations and across sweep repeats.
fn host_image(ds: &IgDataset, strip_nodes: u32) -> Arc<HostImage> {
    type Key = (GraphKey, u32);
    static MEMO: OnceLock<Mutex<BTreeMap<Key, Arc<HostImage>>>> = OnceLock::new();
    let memo = MEMO.get_or_init(|| Mutex::new(BTreeMap::new()));
    let key = (graph_key(ds), strip_nodes);
    if let Some(hit) = memo.lock().unwrap().get(&key) {
        return Arc::clone(hit);
    }

    let g = generate_cached(ds);
    let val_words: Vec<Word> = g
        .values
        .iter()
        .flat_map(|&(a, b)| [from_f32(a), from_f32(b)])
        .collect();
    let adj_words: Vec<Word> = g.adj.iter().flatten().copied().collect();
    let mut out = Vec::with_capacity((ds.nodes / strip_nodes) as usize);
    for s in 0..ds.nodes / strip_nodes {
        let first = s * strip_nodes;
        let mut ptr_words = Vec::new();
        let mut unique_addrs = Vec::new();
        let mut pos: BTreeMap<u32, u32> = BTreeMap::new();
        for i in first..first + strip_nodes {
            for &j in &g.adj[i as usize] {
                let p = *pos.entry(j).or_insert_with(|| {
                    unique_addrs.push(VAL_BASE + 2 * j);
                    unique_addrs.push(VAL_BASE + 2 * j + 1);
                    (unique_addrs.len() as u32 / 2) - 1
                });
                ptr_words.push(p);
            }
        }
        let unique_records = unique_addrs.len() as u32 / 2;
        let replicated_addrs: Vec<u32> = ptr_words
            .iter()
            .flat_map(|&pp| {
                [
                    unique_addrs[2 * pp as usize],
                    unique_addrs[2 * pp as usize + 1],
                ]
            })
            .collect();
        out.push(Strip {
            ptr_words,
            unique_addrs,
            unique_records,
            replicated_addrs,
        });
    }
    let fresh = Arc::new(HostImage {
        val_words,
        adj_words,
        strips: out,
    });
    let mut guard = memo.lock().unwrap();
    Arc::clone(guard.entry(key).or_insert(fresh))
}

/// The per-neighbor function: exactly `fp_ops` FP operations including the
/// accumulate, alternating multiply/add so the reference can mirror the
/// f32 rounding bit-for-bit.
fn host_neighbor(acc: f32, v0: f32, v1: f32, fp_ops: u32) -> f32 {
    const C: f32 = 1.0001;
    let mut t = v0;
    for s in 0..fp_ops - 1 {
        t = if s % 2 == 0 { t * C } else { t + v1 };
    }
    acc + t
}

/// [`reference`] on the memoized graph, itself memoized per dataset —
/// every configuration of a dataset verifies against the same sweep.
fn reference_cached(ds: &IgDataset) -> Arc<Vec<(f32, f32)>> {
    type Key = (GraphKey, u32);
    #[allow(clippy::type_complexity)]
    static MEMO: OnceLock<Mutex<BTreeMap<Key, Arc<Vec<(f32, f32)>>>>> = OnceLock::new();
    let memo = MEMO.get_or_init(|| Mutex::new(BTreeMap::new()));
    let key = (graph_key(ds), ds.fp_ops);
    if let Some(hit) = memo.lock().unwrap().get(&key) {
        return Arc::clone(hit);
    }
    let fresh = Arc::new(reference(&generate_cached(ds), ds.fp_ops));
    let mut guard = memo.lock().unwrap();
    Arc::clone(guard.entry(key).or_insert(fresh))
}

/// Host reference: one full sweep.
pub fn reference(g: &Graph, fp_ops: u32) -> Vec<(f32, f32)> {
    g.adj
        .iter()
        .enumerate()
        .map(|(i, nbrs)| {
            let mut acc = 0.0f32;
            for &j in nbrs {
                let (v0, v1) = g.values[j as usize];
                acc = host_neighbor(acc, v0, v1, fp_ops);
            }
            let (n0, n1) = g.values[i];
            (n0 + acc * 0.5, n1)
        })
        .collect()
}

/// Emit the per-neighbor FP chain for value ids `(v0, v1)`.
fn emit_neighbor(
    b: &mut KernelBuilder,
    acc: ValueId,
    v0: ValueId,
    v1: ValueId,
    fp_ops: u32,
) -> ValueId {
    let c = b.constant_f(1.0001);
    let mut t = v0;
    for s in 0..fp_ops - 1 {
        t = if s % 2 == 0 {
            b.fmul(t, c)
        } else {
            b.fadd(t, v1)
        };
    }
    b.fadd(acc, t)
}

/// Build the update kernel. With `indexed`, neighbor values come from
/// cross-lane indexed reads of the condensed array driven by a sequential
/// pointer stream; otherwise they arrive pre-gathered (replicated) on a
/// sequential stream.
pub fn build_kernel(ds: &IgDataset, indexed: bool) -> Kernel {
    let mut b = KernelBuilder::new(format!(
        "ig_{}_{}",
        ds.name,
        if indexed { "isrf" } else { "base" }
    ));
    let node = b.stream("node", StreamKind::SeqIn);
    let idx = b.stream("idx", StreamKind::SeqIn);
    // Cross-lane accesses are spread over several streams so the per-
    // stream outstanding records fit the address FIFO + stream buffer
    // (at most 4 two-word records per stream per iteration).
    let nstreams = if indexed {
        (ds.degree as usize).div_ceil(4)
    } else {
        1
    };
    let vals: Vec<_> = if indexed {
        (0..nstreams)
            .map(|k| b.stream(format!("unique{k}"), StreamKind::IdxCrossRead))
            .collect()
    } else {
        vec![b.stream("gathered", StreamKind::SeqIn)]
    };
    let out = b.stream("out", StreamKind::SeqOut);

    let n0 = b.seq_read(node);
    let n1 = b.seq_read(node);
    let zero = b.constant_f(0.0);
    let mut acc = zero;
    for k in 0..ds.degree {
        let (v0, v1) = if indexed {
            let p = b.seq_read(idx);
            let s = vals[(k as usize) % nstreams];
            let rec = b.idx_load_record(s, p, 2);
            (rec[0], rec[1])
        } else {
            // The pointer stream is still consumed (the gather used it),
            // but the kernel reads values directly.
            let _p = b.seq_read(idx);
            let v0 = b.seq_read(vals[0]);
            let v1 = b.seq_read(vals[0]);
            (v0, v1)
        };
        acc = emit_neighbor(&mut b, acc, v0, v1, ds.fp_ops);
    }
    let half = b.constant_f(0.5);
    let scaled = b.fmul(acc, half);
    let o0 = b.fadd(n0, scaled);
    b.seq_write(out, o0);
    b.seq_write(out, n1);
    b.build().expect("IG kernel is well-formed")
}

const VAL_BASE: u32 = 0; // node value records (2 words each)
const ADJ_BASE: u32 = 0x10_0000; // adjacency lists (d words per node)
const OUT_BASE: u32 = 0x40_0000; // updated records
const UNIQ_PTR_BASE: u32 = 0x60_0000; // per-strip condensed pointers

/// Set up the machine (graph image, host preprocessing) and build the
/// measured program without running it.
///
/// # Panics
///
/// Panics if the dataset's strips don't tile the graph in lane multiples.
pub fn prepare(cfg: ConfigName, ds: &IgDataset) -> crate::common::Prepared {
    let indexed = matches!(cfg, ConfigName::Isrf1 | ConfigName::Isrf4);
    let mut m = machine(cfg);
    let cacheable = m.config().cache.is_some();

    let kernel = Arc::new(build_kernel(ds, indexed));
    let sched = schedule_for(&m, &kernel);

    let strip_nodes = if indexed {
        ds.isrf_strip_nodes
    } else {
        ds.base_strip_nodes
    };
    assert_eq!(ds.nodes % strip_nodes, 0, "strips must tile the graph");
    assert_eq!(strip_nodes % 8, 0, "strips must fill all lanes");
    let strips = ds.nodes / strip_nodes;
    let d = ds.degree;

    // Memory image: values, adjacency, and (for ISRF) per-strip condensed
    // pointer streams prepared by the host (graph preprocessing). All
    // deterministic in the dataset, so computed once and shared.
    let img = host_image(ds, strip_nodes);
    m.mem_mut()
        .memory_mut()
        .write_block(VAL_BASE, &img.val_words);
    m.mem_mut()
        .memory_mut()
        .write_block(ADJ_BASE, &img.adj_words);
    for (s, strip) in img.strips.iter().enumerate() {
        m.mem_mut()
            .memory_mut()
            .write_block(UNIQ_PTR_BASE + s as u32 * strip_nodes * d, &strip.ptr_words);
    }

    // Streams (double-buffered across strips).
    let mk = |m: &mut isrf_sim::Machine| {
        (
            m.alloc_stream(2, strip_nodes), // node records
            m.alloc_stream(d, strip_nodes), // pointer records
            m.alloc_stream(2, strip_nodes), // out records
        )
    };
    let bufs = [mk(&mut m), mk(&mut m)];
    // Neighbor values: replicated (base) or condensed unique (ISRF).
    let val_bufs = if indexed {
        // Sized for the worst-case unique count: strip + 2*window + slack.
        let cap = strip_nodes + 2 * ds.window + 64;
        [m.alloc_stream(2, cap), m.alloc_stream(2, cap)]
    } else {
        [
            m.alloc_stream(2 * d, strip_nodes),
            m.alloc_stream(2 * d, strip_nodes),
        ]
    };

    let mut p = StreamProgram::new();
    let mut buf_free: [Option<isrf_sim::ProgOpId>; 2] = [None, None];
    let mut prev_kernel: Option<isrf_sim::ProgOpId> = None;
    for s in 0..strips {
        let info = &img.strips[s as usize];
        let pick = (s % 2) as usize;
        let (node_b, ptr_b, out_b) = bufs[pick];
        let vb = val_bufs[pick];
        let mut ldeps: Vec<isrf_sim::ProgOpId> = Vec::new();
        if let Some(u) = buf_free[pick] {
            ldeps.push(u);
        }
        let first = s * strip_nodes;
        let l_node = p.load(
            AddrPattern::contiguous(VAL_BASE + 2 * first, 2 * strip_nodes),
            node_b,
            false,
            &ldeps,
        );
        let l_ptr = p.load(
            AddrPattern::contiguous(UNIQ_PTR_BASE + s * strip_nodes * d, strip_nodes * d),
            ptr_b,
            false,
            &ldeps,
        );
        let (l_vals, vals_binding) = if indexed {
            let b = vb.slice(0, info.unique_records);
            (
                p.load(
                    AddrPattern::Indexed(info.unique_addrs.clone()),
                    b,
                    cacheable,
                    &ldeps,
                ),
                // The kernel addresses the condensed array by record.
                StreamBinding::whole(vb.range, 2, info.unique_records),
            )
        } else {
            // Replicated gather: every reference fetched individually.
            (
                p.load(
                    AddrPattern::Indexed(info.replicated_addrs.clone()),
                    vb,
                    cacheable,
                    &ldeps,
                ),
                vb,
            )
        };
        let mut kdeps = vec![l_node, l_ptr, l_vals];
        if let Some(k) = prev_kernel {
            kdeps.push(k);
        }
        let nstreams = if indexed {
            (ds.degree as usize).div_ceil(4)
        } else {
            1
        };
        let mut bindings = vec![node_b, ptr_b];
        bindings.extend(std::iter::repeat_n(vals_binding, nstreams));
        bindings.push(out_b);
        let k = p.kernel(
            Arc::clone(&kernel),
            sched.clone(),
            bindings,
            (strip_nodes / 8) as u64,
            &kdeps,
        );
        let st = p.store(
            out_b,
            AddrPattern::contiguous(OUT_BASE + 2 * first, 2 * strip_nodes),
            false,
            &[k],
        );
        prev_kernel = Some(k);
        buf_free[pick] = Some(st);
    }
    crate::common::Prepared::new(m, p, vec![(OUT_BASE, 2 * ds.nodes)])
}

/// Run one sweep of the dataset on `cfg`; verified against the reference.
///
/// # Panics
///
/// Panics if strips don't tile the graph, or the simulated sweep diverges
/// from the host reference.
pub fn run(cfg: ConfigName, ds: &IgDataset) -> RunStats {
    let mut pr = prepare(cfg, ds);
    let stats = pr.machine.run(&pr.program);

    // Verify against the reference sweep (identical f32 op order). The
    // graph and reference are deterministic in the dataset, so both come
    // from the per-dataset caches.
    let expect = reference_cached(ds);
    for (i, &(e0, e1)) in expect.iter().enumerate() {
        let g0 = as_f32(pr.machine.mem().memory().read(OUT_BASE + 2 * i as u32));
        let g1 = as_f32(pr.machine.mem().memory().read(OUT_BASE + 2 * i as u32 + 1));
        assert!(
            (g0 - e0).abs() <= 1e-4 * e0.abs().max(1.0) && g1 == e1,
            "node {i}: got ({g0}, {g1}), want ({e0}, {e1})"
        );
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> IgDataset {
        IgDataset {
            name: "IG_TINY",
            fp_ops: 16,
            degree: 4,
            nodes: 512,
            base_strip_nodes: 64,
            isrf_strip_nodes: 128,
            window: 16,
            seed: 7,
        }
    }

    #[test]
    fn kernels_build_and_schedule() {
        let ds = tiny();
        let m = machine(ConfigName::Isrf4);
        schedule_for(&m, &build_kernel(&ds, true));
        let m = machine(ConfigName::Base);
        schedule_for(&m, &build_kernel(&ds, false));
    }

    #[test]
    fn base_functional() {
        run(ConfigName::Base, &tiny());
    }

    #[test]
    fn isrf_functional() {
        run(ConfigName::Isrf4, &tiny());
    }

    #[test]
    fn cache_functional() {
        run(ConfigName::Cache, &tiny());
    }

    #[test]
    fn isrf1_equals_isrf4_for_crosslane_only_kernels() {
        // IG has no in-lane indexed accesses, so the in-lane bandwidth
        // knob that separates ISRF1 from ISRF4 is irrelevant (Figure 12
        // shows them identical for the IG benchmarks).
        let ds = tiny();
        let one = run(ConfigName::Isrf1, &ds);
        let four = run(ConfigName::Isrf4, &ds);
        assert_eq!(one.cycles, four.cycles);
    }

    #[test]
    fn isrf_reduces_traffic_via_deduplication() {
        let ds = tiny();
        let base = run(ConfigName::Base, &ds);
        let isrf = run(ConfigName::Isrf4, &ds);
        let ratio = isrf.mem.normalized_to(&base.mem);
        assert!(ratio < 0.85, "traffic ratio {ratio:.3} (paper: ~0.5)");
        assert!(isrf.srf.crosslane_words > 0, "accesses are cross-lane");
        assert_eq!(isrf.srf.inlane_words, 0);
        assert!(isrf.speedup_over(&base) > 1.0, "ISRF should win");
    }

    #[test]
    fn table4_datasets_are_wellformed() {
        for ds in &DATASETS {
            assert_eq!(ds.nodes % ds.isrf_strip_nodes, 0, "{}", ds.name);
            assert_eq!(ds.nodes % ds.base_strip_nodes, 0, "{}", ds.name);
            assert_eq!(ds.isrf_strip_nodes % 8, 0);
            assert_eq!(ds.base_strip_nodes % 8, 0);
            // Table 4's neighbor-records-per-invocation, approximately.
            let base_recs = ds.base_strip_nodes * ds.degree;
            let isrf_recs = ds.isrf_strip_nodes * ds.degree;
            assert!(isrf_recs >= 2 * base_recs - ds.degree);
            let _ = dataset(ds.name);
        }
    }
}
