//! The 2D FFT benchmark — Section 5.2.
//!
//! A 64×64 complex array (it fits in the SRF). The first-dimension
//! transform runs "across all lanes" as six radix-2 DIF butterfly-stage
//! kernels over sequential/strided streams (distances ≥ 8 pair elements
//! through strided half-streams; distances < 8 pair *lanes* through
//! inter-cluster communication — both classic stream-FFT techniques).
//!
//! The second dimension is where the configurations differ (Figure 3):
//!
//! * **Base/Cache** rotate the array through memory: store the SRF-resident
//!   array, gather it back transposed (and bit-reversal-corrected), and run
//!   the same six sequential stage kernels again. On `Cache` the reorder
//!   gather hits in the cache, saving DRAM traffic — but the explicit
//!   reorder pass remains.
//! * **ISRF** keeps the array in place: with the row-major, record-
//!   interleaved layout every column lives entirely in bank `c mod 8`, so
//!   each cluster transforms its own columns with in-lane indexed reads and
//!   writes; twiddles come from a tiny in-lane table.
//!
//! Results are verified against a naive O(n²)-per-dimension DFT.

use std::f32::consts::PI;
use std::sync::Arc;

use isrf_core::config::ConfigName;
use isrf_core::stats::RunStats;
use isrf_core::word::{from_f32, Word};
use isrf_kernel::ir::{Kernel, KernelBuilder, StreamKind};
use isrf_mem::AddrPattern;
use isrf_sim::{Machine, StreamBinding, StreamProgram};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::common::{machine, schedule_for};

/// Transform size per dimension.
pub const N: u32 = 64;
const HALF: u32 = N / 2; // 32
const ELEMS: u32 = N * N; // 4096 complex records

/// Benchmark sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fft2dParams {
    /// Number of back-to-back 2D FFTs (frames of a stream).
    pub reps: u32,
    /// RNG seed for the input array.
    pub seed: u64,
}

impl Default for Fft2dParams {
    fn default() -> Self {
        Fft2dParams {
            reps: 2,
            seed: 0x5eed_0002,
        }
    }
}

// ---------- host-side complex helpers & reference ----------

/// `W_64^e = exp(-2πi e / 64)`.
fn twiddle(e: i32) -> (f32, f32) {
    let ang = -2.0 * PI * (e as f32) / (N as f32);
    (ang.cos(), ang.sin())
}

fn bitrev6(mut x: u32) -> u32 {
    let mut r = 0;
    for _ in 0..6 {
        r = (r << 1) | (x & 1);
        x >>= 1;
    }
    r
}

/// Naive 2D DFT of a row-major complex array.
pub fn reference_dft2d(input: &[(f32, f32)]) -> Vec<(f32, f32)> {
    assert_eq!(input.len(), ELEMS as usize);
    let n = N as usize;
    // Transform rows, then columns, in f64 for a clean reference.
    let mut mid = vec![(0.0f64, 0.0f64); input.len()];
    for r in 0..n {
        for k in 0..n {
            let mut acc = (0.0f64, 0.0f64);
            for c in 0..n {
                let (xr, xi) = input[r * n + c];
                let ang = -2.0 * std::f64::consts::PI * (k * c % n) as f64 / n as f64;
                let (wr, wi) = (ang.cos(), ang.sin());
                acc.0 += xr as f64 * wr - xi as f64 * wi;
                acc.1 += xr as f64 * wi + xi as f64 * wr;
            }
            mid[r * n + k] = acc;
        }
    }
    let mut out = vec![(0.0f32, 0.0f32); input.len()];
    for k2 in 0..n {
        for k in 0..n {
            let mut acc = (0.0f64, 0.0f64);
            for r in 0..n {
                let (xr, xi) = mid[r * n + k];
                let ang = -2.0 * std::f64::consts::PI * (k2 * r % n) as f64 / n as f64;
                let (wr, wi) = (ang.cos(), ang.sin());
                acc.0 += xr * wr - xi * wi;
                acc.1 += xr * wi + xi * wr;
            }
            out[k2 * n + k] = (acc.0 as f32, acc.1 as f32);
        }
    }
    out
}

/// Host mirror of one in-place DIF stage along the fast axis (used by unit
/// tests to pin down the stage algebra independent of the simulator).
pub fn host_dif_stage(x: &mut [(f32, f32)], d: u32) {
    let n = x.len() as u32;
    let scale = HALF / d;
    let mut b = 0;
    while b < n {
        for j in 0..d {
            let lo = (b + j) as usize;
            let hi = (b + j + d) as usize;
            let (ar, ai) = x[lo];
            let (br, bi) = x[hi];
            let (wr, wi) = twiddle((j * scale) as i32);
            let (dr, di) = (ar - br, ai - bi);
            x[lo] = (ar + br, ai + bi);
            x[hi] = (dr * wr - di * wi, dr * wi + di * wr);
        }
        b += 2 * d;
    }
}

// ---------- kernels ----------

/// Butterfly stage for distance `d >= 8`: strided half-streams + a
/// sequential twiddle stream.
pub fn build_bf_high_kernel(d: u32) -> Kernel {
    let mut b = KernelBuilder::new(format!("fft_bf{d}"));
    let ina = b.stream("inA", StreamKind::SeqIn);
    let inb = b.stream("inB", StreamKind::SeqIn);
    let tw = b.stream("tw", StreamKind::SeqIn);
    let outa = b.stream("outA", StreamKind::SeqOut);
    let outb = b.stream("outB", StreamKind::SeqOut);
    let ar = b.seq_read(ina);
    let ai = b.seq_read(ina);
    let br = b.seq_read(inb);
    let bi = b.seq_read(inb);
    let wr = b.seq_read(tw);
    let wi = b.seq_read(tw);
    let sr = b.fadd(ar, br);
    let si = b.fadd(ai, bi);
    let dr = b.fsub(ar, br);
    let di = b.fsub(ai, bi);
    let p0 = b.fmul(dr, wr);
    let p1 = b.fmul(di, wi);
    let pr = b.fsub(p0, p1);
    let p2 = b.fmul(dr, wi);
    let p3 = b.fmul(di, wr);
    let pi = b.fadd(p2, p3);
    b.seq_write(outa, sr);
    b.seq_write(outa, si);
    b.seq_write(outb, pr);
    b.seq_write(outb, pi);
    b.build().expect("bf_high kernel is well-formed")
}

/// Scratchpad addresses of the per-lane twiddles of the low stages:
/// `d = 4 -> 0, d = 2 -> 2, d = 1 -> 4` (re at the address, im at +1).
fn low_stage_scratch_addr(d: u32) -> u32 {
    match d {
        4 => 0,
        2 => 2,
        1 => 4,
        _ => unreachable!("low stages have d < 8"),
    }
}

/// Butterfly stage for distance `d < 8`: partners sit `d` lanes apart, so
/// the exchange uses the inter-cluster network; each lane is statically a
/// "lower" (sum) or "upper" (difference × twiddle) position, with its
/// twiddle preloaded in the scratchpad.
pub fn build_bf_low_kernel(d: u32) -> Kernel {
    let mut b = KernelBuilder::new(format!("fft_bf{d}"));
    let input = b.stream("in", StreamKind::SeqIn);
    let out = b.stream("out", StreamKind::SeqOut);
    let ar = b.seq_read(input);
    let ai = b.seq_read(input);
    // Butterfly partner sits d lanes away in either direction: lane XOR d.
    let pr = b.comm_xor(d, ar);
    let pi = b.comm_xor(d, ai);
    // is_lower = (lane mod 2d) < d.
    let lane = b.lane_id();
    let mask = b.constant(2 * d - 1);
    let pos = b.and(lane, mask);
    let dconst = b.constant(d);
    let is_lower = b.lt(pos, dconst);
    // Lower output: a + partner.
    let sr = b.fadd(ar, pr);
    let si = b.fadd(ai, pi);
    // Upper output: (partner - a) * w(lane).
    let dr = b.fsub(pr, ar);
    let di = b.fsub(pi, ai);
    let addr_re = b.constant(low_stage_scratch_addr(d));
    let addr_im = b.constant(low_stage_scratch_addr(d) + 1);
    let wr = b.scratch_read(addr_re);
    let wi = b.scratch_read(addr_im);
    let q0 = b.fmul(dr, wr);
    let q1 = b.fmul(di, wi);
    let qr = b.fsub(q0, q1);
    let q2 = b.fmul(dr, wi);
    let q3 = b.fmul(di, wr);
    let qi = b.fadd(q2, q3);
    let or = b.select(is_lower, sr, qr);
    let oi = b.select(is_lower, si, qi);
    b.seq_write(out, or);
    b.seq_write(out, oi);
    b.build().expect("bf_low kernel is well-formed")
}

/// Setup kernel: read 6 per-lane constants (the low-stage twiddles) from a
/// stream and park them in the scratchpad.
pub fn build_scratch_init_kernel() -> Kernel {
    let mut b = KernelBuilder::new("fft_scratch_init");
    let input = b.stream("consts", StreamKind::SeqIn);
    for a in 0..6u32 {
        let v = b.seq_read(input);
        let addr = b.constant(a);
        b.scratch_write(addr, v);
    }
    b.build().expect("scratch init kernel is well-formed")
}

/// The per-lane constant stream for [`build_scratch_init_kernel`]: for
/// each lane, the three low-stage upper twiddles (re, im).
pub fn low_stage_lane_constants(lanes: u32) -> Vec<Word> {
    let mut v = Vec::new();
    for lane in 0..lanes {
        for d in [4u32, 2, 1] {
            let posm = lane % (2 * d);
            let (wr, wi) = if posm >= d {
                twiddle(((posm - d) * (HALF / d)) as i32)
            } else {
                (1.0, 0.0) // unused on lower lanes
            };
            v.push(from_f32(wr));
            v.push(from_f32(wi));
        }
    }
    v
}

/// Second-dimension butterfly stage via in-lane indexed access (ISRF
/// configs): each cluster transforms its 8 resident columns, reading
/// element pairs and the twiddle table with indexed loads and writing
/// results with indexed stores.
pub fn build_bf_idx_kernel(d: u32) -> Kernel {
    let log_d = d.trailing_zeros();
    let mut b = KernelBuilder::new(format!("fft_idx_bf{d}"));
    let data = b.stream("data", StreamKind::IdxInRead); // record = complex
    let twt = b.stream("twt", StreamKind::IdxInRead); // 32-entry table
    let outw = b.stream("out", StreamKind::IdxInWrite); // word-granular
                                                        // iteration i -> column q = i / 32, butterfly j = i % 32.
    let i = b.iter_id();
    let c31 = b.constant(31);
    let c5 = b.constant(5);
    let j = b.and(i, c31);
    let q = b.shr(i, c5);
    // r_a = (j >> log_d) << (log_d + 1) | (j & (d-1)); r_b = r_a + d.
    let cld = b.constant(log_d);
    let cld1 = b.constant(log_d + 1);
    let dm1 = b.constant(d.wrapping_sub(1));
    let jd = b.shr(j, cld);
    let jm = b.and(j, dm1);
    let hi_part = b.shl(jd, cld1);
    let ra = b.or(hi_part, jm);
    let cd = b.constant(d);
    let rb = b.add(ra, cd);
    // Lane-local record index of (row, column q) is 8*row + q.
    let c3 = b.constant(3);
    let ra8 = b.shl(ra, c3);
    let rb8 = b.shl(rb, c3);
    let rec_a = b.or(ra8, q);
    let rec_b = b.or(rb8, q);
    // Twiddle exponent: (j & (d-1)) * (32 / d) = jm << (5 - log_d).
    let sh = b.constant(5 - log_d);
    let e = b.shl(jm, sh);
    let av = b.idx_load_record(data, rec_a, 2);
    let bv = b.idx_load_record(data, rec_b, 2);
    let wv = b.idx_load_record(twt, e, 2);
    let (ar, ai, br, bi, wr, wi) = (av[0], av[1], bv[0], bv[1], wv[0], wv[1]);
    let sr = b.fadd(ar, br);
    let si = b.fadd(ai, bi);
    let dr = b.fsub(ar, br);
    let di = b.fsub(ai, bi);
    let p0 = b.fmul(dr, wr);
    let p1 = b.fmul(di, wi);
    let pr = b.fsub(p0, p1);
    let p2 = b.fmul(dr, wi);
    let p3 = b.fmul(di, wr);
    let pi = b.fadd(p2, p3);
    // Word-granular indexed writes: record k occupies words 2k, 2k+1.
    let one = b.constant(1);
    let wa0 = b.shl(rec_a, one);
    let wa1 = b.or(wa0, one);
    let wb0 = b.shl(rec_b, one);
    let wb1 = b.or(wb0, one);
    b.idx_write(outw, wa0, sr);
    b.idx_write(outw, wa1, si);
    b.idx_write(outw, wb0, pr);
    b.idx_write(outw, wb1, pi);
    b.build().expect("bf_idx kernel is well-formed")
}

// ---------- memory layout & patterns ----------

const IN_BASE: u32 = 0;
const SCRATCH_BASE: u32 = 0x8_0000;
const OUT_BASE: u32 = 0x10_0000;
const CONST_BASE: u32 = 0x18_0000;

/// Gather pattern for the Base reorder: new record `k*64 + r` reads stored
/// record `r*64 + bitrev(k)`.
fn transpose_gather_pattern(store_base: u32) -> AddrPattern {
    let mut addrs = Vec::with_capacity((ELEMS * 2) as usize);
    for k in 0..N {
        for r in 0..N {
            let src = r * N + bitrev6(k);
            addrs.push(store_base + 2 * src);
            addrs.push(store_base + 2 * src + 1);
        }
    }
    AddrPattern::Indexed(addrs)
}

/// Gather for the Base output reorder: after pass 2 the stored record
/// `k*64 + r` holds G(bitrev(r), k); natural-order record `a*64 + k` is
/// therefore fetched from stored record `k*64 + bitrev(a)`.
fn base_unshuffle_gather(store_base: u32) -> AddrPattern {
    let mut addrs = Vec::with_capacity((ELEMS * 2) as usize);
    for a in 0..N {
        for k in 0..N {
            let src = k * N + bitrev6(a);
            addrs.push(store_base + 2 * src);
            addrs.push(store_base + 2 * src + 1);
        }
    }
    AddrPattern::Indexed(addrs)
}

/// Final scatter for ISRF: stream record `r*64 + c` holds
/// G(bitrev(r), bitrev(c)).
fn isrf_output_scatter(out_base: u32) -> AddrPattern {
    let mut addrs = Vec::with_capacity((ELEMS * 2) as usize);
    for r in 0..N {
        for c in 0..N {
            let dst = bitrev6(r) * N + bitrev6(c);
            addrs.push(out_base + 2 * dst);
            addrs.push(out_base + 2 * dst + 1);
        }
    }
    AddrPattern::Indexed(addrs)
}

/// One period of a high stage's twiddle stream: record `j` is
/// `W^(j * 32/d)` for `j` in `0..d` (the kernels re-read it periodically).
fn high_stage_twiddles(d: u32) -> Vec<Word> {
    let scale = HALF / d;
    let mut v = Vec::with_capacity(2 * d as usize);
    for j in 0..d {
        let (wr, wi) = twiddle((j * scale) as i32);
        v.push(from_f32(wr));
        v.push(from_f32(wi));
    }
    v
}

/// In-lane twiddle table (32 entries, replicated per lane): lane-local
/// record `e` is `W^e`.
fn idx_twiddle_table_words(lanes: u32) -> Vec<Word> {
    let mut v = Vec::new();
    for e in 0..HALF {
        for _ in 0..lanes {
            let (wr, wi) = twiddle(e as i32);
            v.push(from_f32(wr));
            v.push(from_f32(wi));
        }
    }
    v
}

// ---------- the benchmark ----------

struct Setup {
    x: StreamBinding,
    y: StreamBinding,
    tw_high: Vec<StreamBinding>,
    tw_table: Option<StreamBinding>,
}

/// Load input, twiddles and scratch constants; excluded from measurement.
fn setup(m: &mut Machine, indexed: bool, params: &Fft2dParams) -> Setup {
    let lanes = m.config().lanes as u32;
    // Input data in memory.
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let input: Vec<Word> = (0..ELEMS * 2)
        .map(|_| from_f32(rng.gen_range(-1.0f32..1.0)))
        .collect();
    m.mem_mut().memory_mut().write_block(IN_BASE, &input);
    // Twiddle streams and tables.
    for (i, d) in [HALF, 16, 8].iter().enumerate() {
        m.mem_mut()
            .memory_mut()
            .write_block(CONST_BASE + (i as u32) * ELEMS, &high_stage_twiddles(*d));
    }
    m.mem_mut()
        .memory_mut()
        .write_block(CONST_BASE + 3 * ELEMS, &low_stage_lane_constants(lanes));
    m.mem_mut()
        .memory_mut()
        .write_block(CONST_BASE + 4 * ELEMS, &idx_twiddle_table_words(lanes));

    let x = m.alloc_stream(2, ELEMS);
    let y = m.alloc_stream(2, ELEMS);
    // One twiddle period per stage; the stage kernels re-read it with a
    // periodic (stride-0) window.
    let tw_high: Vec<StreamBinding> = [HALF, 16, 8]
        .iter()
        .map(|&d| m.alloc_stream(2, d))
        .collect();
    let tw_table = indexed.then(|| m.alloc_stream(2, HALF * lanes));
    let lane_consts = m.alloc_stream(6, lanes);

    let init = Arc::new(build_scratch_init_kernel());
    let init_sched = schedule_for(m, &init);
    let mut p = StreamProgram::new();
    for (i, (tw, d)) in tw_high.iter().zip([HALF, 16, 8]).enumerate() {
        p.load(
            AddrPattern::contiguous(CONST_BASE + (i as u32) * ELEMS, d * 2),
            *tw,
            false,
            &[],
        );
    }
    let lc = p.load(
        AddrPattern::contiguous(CONST_BASE + 3 * ELEMS, 6 * lanes),
        lane_consts,
        false,
        &[],
    );
    if let Some(t) = tw_table {
        // The memory image is already lane-replicated (entry e repeated
        // once per lane), so a contiguous load produces lane-local record
        // e == table entry e in every bank.
        p.load(
            AddrPattern::contiguous(CONST_BASE + 4 * ELEMS, HALF * lanes * 2),
            t,
            false,
            &[],
        );
    }
    p.kernel(Arc::clone(&init), init_sched, vec![lane_consts], 1, &[lc]);
    m.run(&p);
    m.reset_stats();
    Setup {
        x,
        y,
        tw_high,
        tw_table,
    }
}

/// Append one pass of six sequential butterfly stages over `x`/`y`,
/// returning (final region holding the data, last kernel op).
#[allow(clippy::too_many_arguments)]
fn push_sequential_pass(
    p: &mut StreamProgram,
    su: &Setup,
    kernels: &SeqKernels,
    mut cur: StreamBinding,
    mut other: StreamBinding,
    dep: isrf_sim::ProgOpId,
) -> (StreamBinding, isrf_sim::ProgOpId) {
    let mut last = dep;
    for (si, d) in [HALF, 16, 8].iter().enumerate() {
        let d = *d;
        let runs = ELEMS / (2 * d);
        let a_in = StreamBinding::windowed(cur.range, 2, 0, d, 2 * d, runs);
        let b_in = StreamBinding::windowed(cur.range, 2, d, d, 2 * d, runs);
        let a_out = StreamBinding::windowed(other.range, 2, 0, d, 2 * d, runs);
        let b_out = StreamBinding::windowed(other.range, 2, d, d, 2 * d, runs);
        let tw_in = StreamBinding::windowed(su.tw_high[si].range, 2, 0, d, 0, runs);
        last = p.kernel(
            Arc::clone(&kernels.high[si].0),
            kernels.high[si].1.clone(),
            vec![a_in, b_in, tw_in, a_out, b_out],
            (ELEMS / 2 / 8) as u64,
            &[last],
        );
        std::mem::swap(&mut cur, &mut other);
    }
    for si in 0..3 {
        last = p.kernel(
            Arc::clone(&kernels.low[si].0),
            kernels.low[si].1.clone(),
            vec![cur, other],
            (ELEMS / 8) as u64,
            &[last],
        );
        std::mem::swap(&mut cur, &mut other);
    }
    (cur, last)
}

struct SeqKernels {
    high: Vec<(Arc<Kernel>, Arc<isrf_kernel::Schedule>)>,
    low: Vec<(Arc<Kernel>, Arc<isrf_kernel::Schedule>)>,
}

fn seq_kernels(m: &Machine) -> SeqKernels {
    let high = [HALF, 16, 8]
        .iter()
        .map(|&d| {
            let k = Arc::new(build_bf_high_kernel(d));
            let s = schedule_for(m, &k);
            (k, s)
        })
        .collect();
    let low = [4u32, 2, 1]
        .iter()
        .map(|&d| {
            let k = Arc::new(build_bf_low_kernel(d));
            let s = schedule_for(m, &k);
            (k, s)
        })
        .collect();
    SeqKernels { high, low }
}

fn verify(m: &Machine, params: &Fft2dParams) {
    let input: Vec<(f32, f32)> = (0..ELEMS as usize)
        .map(|e| {
            (
                f32::from_bits(m.mem().memory().read(IN_BASE + 2 * e as u32)),
                f32::from_bits(m.mem().memory().read(IN_BASE + 2 * e as u32 + 1)),
            )
        })
        .collect();
    let expect = reference_dft2d(&input);
    let scale = expect
        .iter()
        .map(|c| c.0.abs().max(c.1.abs()))
        .fold(1.0f32, f32::max);
    let _ = params;
    for (e, &(er, ei)) in expect.iter().enumerate() {
        let gr = f32::from_bits(m.mem().memory().read(OUT_BASE + 2 * e as u32));
        let gi = f32::from_bits(m.mem().memory().read(OUT_BASE + 2 * e as u32 + 1));
        let tol = 2e-3 * scale;
        assert!(
            (gr - er).abs() < tol && (gi - ei).abs() < tol,
            "element {e}: got ({gr}, {gi}), want ({er}, {ei}) (tol {tol})"
        );
    }
}

/// Prepare the Base/Cache version (reorder through memory between
/// dimensions).
fn prepare_base(cfg: ConfigName, params: &Fft2dParams) -> crate::common::Prepared {
    let mut m = machine(cfg);
    let cacheable = m.config().cache.is_some();
    let su = setup(&mut m, false, params);
    let kernels = seq_kernels(&m);

    let mut p = StreamProgram::new();
    let mut last_rep: Option<isrf_sim::ProgOpId> = None;
    for _ in 0..params.reps {
        let mut deps = Vec::new();
        if let Some(d) = last_rep {
            deps.push(d);
        }
        let load = p.load(
            AddrPattern::contiguous(IN_BASE, ELEMS * 2),
            su.x,
            false,
            &deps,
        );
        let (pos1, k1) = push_sequential_pass(&mut p, &su, &kernels, su.x, su.y, load);
        // Reorder #1 through memory: store + transposed/bit-reversal-
        // corrected gather (Figure 3a).
        let st = p.store(
            pos1,
            AddrPattern::contiguous(SCRATCH_BASE, ELEMS * 2),
            cacheable,
            &[k1],
        );
        let (dst, other) = if pos1 == su.x {
            (su.x, su.y)
        } else {
            (su.y, su.x)
        };
        let gt = p.load(
            transpose_gather_pattern(SCRATCH_BASE),
            dst,
            cacheable,
            &[st],
        );
        let (pos2, k2) = push_sequential_pass(&mut p, &su, &kernels, dst, other, gt);
        // Reorder #2: rotate back to natural row-major coefficient order,
        // again through memory.
        let st2 = p.store(
            pos2,
            AddrPattern::contiguous(SCRATCH_BASE, ELEMS * 2),
            cacheable,
            &[k2],
        );
        let dst2 = if pos2 == su.x { su.y } else { su.x };
        let gt2 = p.load(base_unshuffle_gather(SCRATCH_BASE), dst2, cacheable, &[st2]);
        let fin = p.store(
            dst2,
            AddrPattern::contiguous(OUT_BASE, ELEMS * 2),
            false,
            &[gt2],
        );
        last_rep = Some(fin);
    }
    crate::common::Prepared::new(m, p, vec![(OUT_BASE, ELEMS * 2)])
}

/// Prepare the ISRF version (second dimension in place via indexed access).
fn prepare_isrf(cfg: ConfigName, params: &Fft2dParams) -> crate::common::Prepared {
    let mut m = machine(cfg);
    let su = setup(&mut m, true, params);
    let kernels = seq_kernels(&m);
    let idx_kernels: Vec<(Arc<Kernel>, Arc<isrf_kernel::Schedule>)> = [HALF, 16, 8, 4, 2, 1]
        .iter()
        .map(|&d| {
            let k = Arc::new(build_bf_idx_kernel(d));
            let s = schedule_for(&m, &k);
            (k, s)
        })
        .collect();
    let twt = su.tw_table.expect("indexed setup allocates the table");

    let mut p = StreamProgram::new();
    let mut last_rep: Option<isrf_sim::ProgOpId> = None;
    for _ in 0..params.reps {
        let mut deps = Vec::new();
        if let Some(d) = last_rep {
            deps.push(d);
        }
        let load = p.load(
            AddrPattern::contiguous(IN_BASE, ELEMS * 2),
            su.x,
            false,
            &deps,
        );
        let (pos1, k1) = push_sequential_pass(&mut p, &su, &kernels, su.x, su.y, load);
        // Second dimension: in-lane indexed stages, no memory reorder.
        let mut cur = pos1;
        let mut other = if pos1 == su.x { su.y } else { su.x };
        let mut last = k1;
        for (si, _) in [HALF, 16, 8, 4, 2, 1].iter().enumerate() {
            // Indexed write stream is word-granular over the output region.
            let out_words = StreamBinding::whole(other.range, 1, ELEMS * 2);
            last = p.kernel(
                Arc::clone(&idx_kernels[si].0),
                idx_kernels[si].1.clone(),
                vec![cur, twt, out_words],
                256, // 8 columns x 32 butterflies per cluster
                &[last],
            );
            std::mem::swap(&mut cur, &mut other);
        }
        let fin = p.store(cur, isrf_output_scatter(OUT_BASE), false, &[last]);
        last_rep = Some(fin);
    }
    crate::common::Prepared::new(m, p, vec![(OUT_BASE, ELEMS * 2)])
}

/// Set up the machine (input, twiddles, un-measured setup program) and
/// build the measured program without running it.
pub fn prepare(cfg: ConfigName, params: &Fft2dParams) -> crate::common::Prepared {
    match cfg {
        ConfigName::Isrf1 | ConfigName::Isrf4 => prepare_isrf(cfg, params),
        ConfigName::Base | ConfigName::Cache => prepare_base(cfg, params),
    }
}

/// Run the benchmark; results are verified against the reference DFT.
///
/// # Panics
///
/// Panics if the simulated result diverges from the reference DFT.
pub fn run(cfg: ConfigName, params: &Fft2dParams) -> RunStats {
    let mut pr = prepare(cfg, params);
    let stats = pr.machine.run(&pr.program);
    verify(&pr.machine, params);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_dif_stages_match_reference_1d() {
        // Run the six DIF stages on one row; compare to a naive DFT with
        // bit-reversed output order.
        let mut rng = SmallRng::seed_from_u64(7);
        let x: Vec<(f32, f32)> = (0..N as usize)
            .map(|_| (rng.gen_range(-1.0f32..1.0), rng.gen_range(-1.0f32..1.0)))
            .collect();
        let mut y = x.clone();
        for d in [32u32, 16, 8, 4, 2, 1] {
            host_dif_stage(&mut y, d);
        }
        for k in 0..N {
            let mut acc = (0.0f64, 0.0f64);
            for c in 0..N {
                let (xr, xi) = x[c as usize];
                let ang = -2.0 * std::f64::consts::PI * ((k * c) % N) as f64 / N as f64;
                acc.0 += xr as f64 * ang.cos() - xi as f64 * ang.sin();
                acc.1 += xr as f64 * ang.sin() + xi as f64 * ang.cos();
            }
            let got = y[bitrev6(k) as usize];
            assert!(
                (got.0 as f64 - acc.0).abs() < 1e-3 && (got.1 as f64 - acc.1).abs() < 1e-3,
                "k={k}: got {got:?}, want {acc:?}"
            );
        }
    }

    #[test]
    fn bitrev_is_an_involution() {
        for x in 0..N {
            assert_eq!(bitrev6(bitrev6(x)), x);
        }
        assert_eq!(bitrev6(1), 32);
        assert_eq!(bitrev6(0b000011), 0b110000);
    }

    #[test]
    fn kernels_build_and_schedule() {
        let m = machine(ConfigName::Isrf4);
        for d in [32u32, 16, 8] {
            let k = build_bf_high_kernel(d);
            schedule_for(&m, &k);
        }
        for d in [4u32, 2, 1] {
            let k = build_bf_low_kernel(d);
            schedule_for(&m, &k);
        }
        for d in [32u32, 16, 8, 4, 2, 1] {
            let k = build_bf_idx_kernel(d);
            schedule_for(&m, &k);
        }
    }

    #[test]
    fn base_functional() {
        run(ConfigName::Base, &Fft2dParams { reps: 1, seed: 3 });
    }

    #[test]
    fn isrf_functional() {
        run(ConfigName::Isrf4, &Fft2dParams { reps: 1, seed: 3 });
    }

    #[test]
    fn cache_functional() {
        run(ConfigName::Cache, &Fft2dParams { reps: 1, seed: 3 });
    }

    #[test]
    fn isrf1_functional_and_slower_than_isrf4() {
        let p = Fft2dParams { reps: 1, seed: 3 };
        let one = run(ConfigName::Isrf1, &p);
        let four = run(ConfigName::Isrf4, &p);
        // The indexed FFT stages use several indexed streams, so ISRF1's
        // single indexed word per cycle per lane costs SRF stalls.
        assert!(one.cycles >= four.cycles);
        assert!(one.breakdown.srf_stall > four.breakdown.srf_stall);
    }

    #[test]
    fn isrf_beats_base_with_less_traffic() {
        let params = Fft2dParams { reps: 2, seed: 5 };
        let base = run(ConfigName::Base, &params);
        let isrf = run(ConfigName::Isrf4, &params);
        let speedup = isrf.speedup_over(&base);
        assert!(speedup > 1.3, "speedup {speedup:.2} (paper: 2.24x)");
        let ratio = isrf.mem.normalized_to(&base.mem);
        assert!(ratio < 0.6, "traffic ratio {ratio:.3} (paper: ~0.33)");
    }
}
