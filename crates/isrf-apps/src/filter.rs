//! The Filter benchmark — Section 5.2: a 5×5 convolution over a 2D image.
//!
//! Both versions load the image in lane-blocked strips (each cluster owns
//! a few rows plus a 4-row halo), so off-chip traffic is identical —
//! Figure 11 shows no bandwidth gain for Filter. The difference is inside
//! the kernel loop:
//!
//! * **Base/Cache**: sequential access can't revisit rows, so the kernel
//!   streams its block once, copying pixels into a cluster-scratchpad ring
//!   and reading all 25 neighborhood values back from the scratchpad.
//!   The single scratchpad port and the ring-address arithmetic lengthen
//!   the loop (the paper's "complex state management").
//! * **ISRF**: the kernel simply reads the 25 neighbors from the SRF with
//!   in-lane indexed accesses spread over four indexed streams — Filter is
//!   one of the two benchmarks that exercise multiple indexed streams,
//!   which is why it distinguishes ISRF1 from ISRF4 (Figure 12).
//!
//! Image streams have no temporal locality through memory, so loads are
//! marked non-cacheable (the paper's cache policy) and `Cache` behaves
//! exactly like `Base`. Results are verified against a direct convolution.

use std::sync::Arc;

use isrf_core::config::ConfigName;
use isrf_core::stats::RunStats;
use isrf_core::word::{as_f32, from_f32, Word};
use isrf_kernel::ir::{Kernel, KernelBuilder, StreamKind, ValueId};
use isrf_mem::AddrPattern;
use isrf_sim::{Machine, StreamProgram};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::common::{machine, schedule_for};

/// Image width in pixels (fixed; rows are configurable).
pub const COLS: u32 = 256;
/// Output rows each lane computes per strip.
const B: u32 = 4;
/// Input rows per lane block (output rows + 4-row halo).
const BLOCK_ROWS: u32 = B + 4;
/// Output rows per strip (8 lanes × B).
const STRIP_ROWS: u32 = 8 * B;

/// Benchmark sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilterParams {
    /// Image height; must be a multiple of 32. The paper uses 256.
    pub rows: u32,
    /// RNG seed for the image.
    pub seed: u64,
}

impl Default for FilterParams {
    fn default() -> Self {
        FilterParams {
            rows: 64,
            seed: 0x5eed_0003,
        }
    }
}

/// The 5×5 filter taps (a separable \[1,2,3,2,1\] blur, normalized).
pub fn taps() -> [[f32; 5]; 5] {
    let v = [1.0f32, 2.0, 3.0, 2.0, 1.0];
    let norm: f32 = 81.0;
    let mut w = [[0.0; 5]; 5];
    for (i, wi) in w.iter_mut().enumerate() {
        for (j, wij) in wi.iter_mut().enumerate() {
            *wij = v[i] * v[j] / norm;
        }
    }
    w
}

const IN_BASE: u32 = 0;
const OUT_BASE: u32 = 0x40_0000;

/// Reference: `out(row, x)` for `x >= 4` is the filter centered at
/// `(row, x-2)` with rows clamped to the image and columns windowed
/// `[x-4, x]`.
pub fn reference(img: &[f32], rows: u32) -> Vec<f32> {
    let w = taps();
    let mut out = vec![0.0f32; (rows * COLS) as usize];
    for r in 0..rows {
        for x in 4..COLS {
            let mut acc = 0.0f32;
            for (dy, wrow) in w.iter().enumerate() {
                let rr = (r as i32 + dy as i32 - 2).clamp(0, rows as i32 - 1) as u32;
                for (dx, &wv) in wrow.iter().enumerate() {
                    let cc = x - 4 + dx as u32;
                    acc += wv * img[(rr * COLS + cc) as usize];
                }
            }
            out[(r * COLS + x) as usize] = acc;
        }
    }
    out
}

/// Accumulate the 25 multiply-adds over value ids `v[dy][dx]`.
fn mac25(b: &mut KernelBuilder, v: &[[ValueId; 5]; 5]) -> ValueId {
    let w = taps();
    let mut acc: Option<ValueId> = None;
    for (dy, row) in v.iter().enumerate() {
        for (dx, &val) in row.iter().enumerate() {
            let c = b.constant_f(w[dy][dx]);
            let m = b.fmul(val, c);
            acc = Some(match acc {
                None => m,
                Some(a) => b.fadd(a, m),
            });
        }
    }
    acc.expect("25 taps")
}

/// Base kernel: stream the block once, mirror it into the scratchpad, and
/// read neighborhoods back through the single scratchpad port.
pub fn build_base_kernel() -> Kernel {
    let mut b = KernelBuilder::new("filter_base");
    let input = b.stream("in", StreamKind::SeqIn);
    let out = b.stream("out", StreamKind::SeqOut);
    // Iteration i -> input pixel (ly = i >> 8, x = i & 255).
    let i = b.iter_id();
    let c8 = b.constant(8);
    let cff = b.constant(0xff);
    let ly = b.shr(i, c8);
    let x = b.and(i, cff);
    let p = b.seq_read(input);
    // Park the new pixel: scratch[ly*256 + x] (the block fits whole).
    let row_off = b.shl(ly, c8);
    let waddr = b.or(row_off, x);
    b.scratch_write(waddr, p);
    // Read the 25-neighborhood of centre (ly-2, x-2): rows ly-4..ly,
    // cols x-4..x (garbage during the 4-row prime, discarded by the store).
    let mut vals = [[ValueId(0); 5]; 5];
    for dy in 0..5u32 {
        let cdy = b.constant((4 - dy) << 8);
        let rbase = b.sub(row_off, cdy);
        for dx in 0..5u32 {
            let ck = b.constant(4 - dx);
            let col = b.sub(x, ck);
            let addr = b.add(rbase, col);
            vals[dy as usize][dx as usize] = b.scratch_read(addr);
        }
    }
    let acc = mac25(&mut b, &vals);
    b.seq_write(out, acc);
    b.build().expect("filter base kernel is well-formed")
}

/// ISRF kernel: read the 25 neighbors straight from the SRF block with
/// in-lane indexed accesses over four streams.
pub fn build_isrf_kernel() -> Kernel {
    let mut b = KernelBuilder::new("filter_isrf");
    let imgs: Vec<_> = (0..4)
        .map(|k| b.stream(format!("img{k}"), StreamKind::IdxInRead))
        .collect();
    let out = b.stream("out", StreamKind::SeqOut);
    // Iteration i -> output pixel (ly = i >> 8, x = i & 255); the filter
    // centre is (ly + 2, x - 2), i.e. block rows ly..ly+5, cols x-4..x.
    let i = b.iter_id();
    let c8 = b.constant(8);
    let cff = b.constant(0xff);
    let ly = b.shr(i, c8);
    let x = b.and(i, cff);
    let row0 = b.shl(ly, c8);
    let zero = b.constant(0);
    let mut vals = [[ValueId(0); 5]; 5];
    for dy in 0..5u32 {
        let cdy = b.constant(dy << 8);
        let rbase = b.add(row0, cdy);
        for dx in 0..5u32 {
            let ck = b.constant(4 - dx);
            let cs = b.sub(x, ck);
            // Clamp the don't-care columns of the skew region (x < 4) so
            // the address stays in range.
            let col = b.max(cs, zero);
            let addr = b.add(rbase, col);
            let stream = imgs[((dy * 5 + dx) % 4) as usize];
            vals[dy as usize][dx as usize] = b.idx_load(stream, addr);
        }
    }
    let acc = mac25(&mut b, &vals);
    b.seq_write(out, acc);
    b.build().expect("filter ISRF kernel is well-formed")
}

/// Load pattern for one strip: per lane block, image rows
/// `strip_row0 + lane*B - 2 .. + BLOCK_ROWS`, clamped vertically.
fn strip_load_pattern(strip_row0: u32, rows: u32) -> AddrPattern {
    let mut addrs = Vec::with_capacity((8 * BLOCK_ROWS * COLS) as usize);
    // Stream record r -> lane r % 8; emit in stream order: the k-th word
    // of record l is word k of lane l's block. Record = whole block, so
    // stream order is block words of record 0, then record 1, ...
    // Records are lane-blocks in lane order.
    for lane in 0..8u32 {
        for br in 0..BLOCK_ROWS {
            let row = (strip_row0 + lane * B + br) as i32 - 2;
            let row = row.clamp(0, rows as i32 - 1) as u32;
            for c in 0..COLS {
                addrs.push(IN_BASE + row * COLS + c);
            }
        }
    }
    AddrPattern::Indexed(addrs)
}

/// Store pattern mapping valid output records to natural image layout.
/// Stream records are rows: record `l + 8*j` is row `j` of lane `l`
/// (global row `strip_row0 + l*B + j - skew`), for the record window the
/// caller selects.
fn strip_store_pattern(strip_row0: u32, first_j: u32, js: u32) -> AddrPattern {
    let mut addrs = Vec::with_capacity((8 * js * COLS) as usize);
    for j in first_j..first_j + js {
        for lane in 0..8u32 {
            let row = strip_row0 + lane * B + (j - first_j);
            for c in 0..COLS {
                addrs.push(OUT_BASE + row * COLS + c);
            }
        }
    }
    AddrPattern::Indexed(addrs)
}

fn lay_out_image(m: &mut Machine, params: &FilterParams) -> Vec<f32> {
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let img: Vec<f32> = (0..params.rows * COLS)
        .map(|_| rng.gen_range(0.0f32..1.0))
        .collect();
    let words: Vec<Word> = img.iter().map(|&v| from_f32(v)).collect();
    m.mem_mut().memory_mut().write_block(IN_BASE, &words);
    img
}

fn verify(m: &Machine, rows: u32) {
    // The input image survives untouched at IN_BASE; read it back rather
    // than threading it through the prepare/run split.
    let img: Vec<f32> = (0..rows * COLS)
        .map(|i| as_f32(m.mem().memory().read(IN_BASE + i)))
        .collect();
    let expect = reference(&img, rows);
    for r in 0..rows {
        for x in 4..COLS {
            let got = as_f32(m.mem().memory().read(OUT_BASE + r * COLS + x));
            let want = expect[(r * COLS + x) as usize];
            assert!(
                (got - want).abs() < 1e-3,
                "pixel ({r}, {x}): got {got}, want {want}"
            );
        }
    }
}

/// Set up the machine and build the measured program without running it.
///
/// # Panics
///
/// Panics if `params.rows` is not a positive multiple of the strip height.
pub fn prepare(cfg: ConfigName, params: &FilterParams) -> crate::common::Prepared {
    assert!(
        params.rows.is_multiple_of(STRIP_ROWS) && params.rows >= STRIP_ROWS,
        "rows must be a multiple of {STRIP_ROWS}"
    );
    let indexed = matches!(cfg, ConfigName::Isrf1 | ConfigName::Isrf4);
    let mut m = machine(cfg);
    if !indexed {
        // The baseline parks a whole lane-block in the scratchpad; give it
        // the capacity (this only ever helps the baseline).
        let mut c = m.config().clone();
        c.cluster.scratchpad_words = (BLOCK_ROWS * COLS) as usize;
        m = Machine::new(c).expect("config still valid");
    }
    lay_out_image(&mut m, params);

    let kernel = Arc::new(if indexed {
        build_isrf_kernel()
    } else {
        build_base_kernel()
    });
    let sched = schedule_for(&m, &kernel);

    // SRF streams: input block region and output row records.
    let input = m.alloc_stream(BLOCK_ROWS * COLS, 8);
    let out_rows = if indexed { B } else { BLOCK_ROWS };
    let output = m.alloc_stream(COLS, 8 * out_rows);

    let mut p = StreamProgram::new();
    let mut prev: Option<isrf_sim::ProgOpId> = None;
    for strip in 0..params.rows / STRIP_ROWS {
        let row0 = strip * STRIP_ROWS;
        let mut deps: Vec<isrf_sim::ProgOpId> = Vec::new();
        if let Some(pk) = prev {
            deps.push(pk);
        }
        let load = p.load(strip_load_pattern(row0, params.rows), input, false, &deps);
        let bindings = if indexed {
            // Four in-lane indexed views of the block + the output.
            let view = isrf_sim::StreamBinding::whole(input.range, 1, BLOCK_ROWS * COLS * 8);
            vec![view, view, view, view, output]
        } else {
            vec![input, output]
        };
        let iters = if indexed { B * COLS } else { BLOCK_ROWS * COLS } as u64;
        let k = p.kernel(Arc::clone(&kernel), sched.clone(), bindings, iters, &[load]);
        // Store only the valid rows: for Base the first 4 per lane are the
        // scratch-priming skew, for ISRF everything is valid.
        let (first_j, js) = if indexed { (0, B) } else { (4, B) };
        let window = output.slice(first_j * 8, js * 8);
        let st = p.store(window, strip_store_pattern(row0, first_j, js), false, &[k]);
        prev = Some(st);
    }
    crate::common::Prepared::new(m, p, vec![(OUT_BASE, params.rows * COLS)])
}

/// Run the benchmark on `cfg`; verified against direct convolution.
///
/// # Panics
///
/// Panics if `params.rows` is not a positive multiple of the strip height,
/// or the simulated result diverges from the reference convolution.
pub fn run(cfg: ConfigName, params: &FilterParams) -> RunStats {
    let mut pr = prepare(cfg, params);
    let stats = pr.machine.run(&pr.program);
    verify(&pr.machine, params.rows);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> FilterParams {
        FilterParams { rows: 32, seed: 11 }
    }

    #[test]
    fn kernels_build_and_schedule() {
        let m = machine(ConfigName::Isrf4);
        schedule_for(&m, &build_isrf_kernel());
        let m = machine(ConfigName::Base);
        schedule_for(&m, &build_base_kernel());
    }

    #[test]
    fn base_functional() {
        run(ConfigName::Base, &small());
    }

    #[test]
    fn isrf_functional() {
        run(ConfigName::Isrf4, &small());
    }

    #[test]
    fn isrf_shortens_kernel_loop_with_equal_traffic() {
        let params = small();
        let base = run(ConfigName::Base, &params);
        let isrf = run(ConfigName::Isrf4, &params);
        let speedup = isrf.speedup_over(&base);
        assert!(
            speedup > 1.02 && speedup < 2.0,
            "speedup {speedup:.2} (paper: ~1.2x from loop-body reduction)"
        );
        let ratio = isrf.mem.normalized_to(&base.mem);
        assert!(
            (0.85..=1.15).contains(&ratio),
            "traffic ratio {ratio:.3} (paper: ~1.0)"
        );
        assert!(
            isrf.breakdown.kernel_loop < base.breakdown.kernel_loop,
            "ISRF loop {} vs base {}",
            isrf.breakdown.kernel_loop,
            base.breakdown.kernel_loop
        );
    }

    #[test]
    fn isrf1_stalls_more_than_isrf4() {
        // Filter uses multiple indexed streams, so ISRF1's single indexed
        // word per cycle per lane is a real bottleneck (Figure 12).
        let params = small();
        let isrf1 = run(ConfigName::Isrf1, &params);
        let isrf4 = run(ConfigName::Isrf4, &params);
        assert!(
            isrf1.breakdown.srf_stall > isrf4.breakdown.srf_stall,
            "ISRF1 stalls {} vs ISRF4 {}",
            isrf1.breakdown.srf_stall,
            isrf4.breakdown.srf_stall
        );
        assert!(isrf4.cycles <= isrf1.cycles);
    }
}
