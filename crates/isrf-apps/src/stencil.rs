//! 2D stencil suite (5-point and 9-point) — the workload the SARIS line
//! of work accelerates with indirect stream registers (see PAPERS.md).
//!
//! A radius-1 stencil over a `rows × 64` grid with clamped boundaries,
//! run as a two-pass pipeline: pass 1 applies the 5-point star to the
//! input grid, pass 2 applies the 9-point box to pass 1's output. Both
//! variants process the grid in 32-row strips:
//!
//! * **Base/Cache**: one sequential input stream *per tap* — the memory
//!   system streams a shifted, boundary-clamped copy of the grid for
//!   every neighbor offset, so the kernel is a pure weighted sum but
//!   every interior word crosses the memory system 5 (or 9) times.
//! * **ISRF**: each lane keeps a block of `B` output rows plus a one-row
//!   halo resident in its SRF bank across the whole strip, and the
//!   kernel reaches all taps with **in-lane** indexed reads (four
//!   indexed streams, like Filter) — each word is loaded once per pass,
//!   and the halo rows are reused in-lane across strip iterations.
//!
//! Tap order and weights are fixed, the kernel accumulates in that exact
//! order, and the host reference mirrors it, so results are compared
//! **bit-for-bit**. The grid generator is deterministic in the seed.

use std::sync::Arc;

use isrf_core::config::ConfigName;
use isrf_core::stats::RunStats;
use isrf_core::word::{from_f32, Word};
use isrf_kernel::ir::{Kernel, KernelBuilder, StreamKind};
use isrf_kernel::sched::Schedule;
use isrf_mem::AddrPattern;
use isrf_sim::{Machine, ProgOpId, StreamBinding, StreamProgram};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::common::{machine, schedule_for};

/// Grid width in words (fixed; rows are configurable).
pub const COLS: u32 = 64;
/// Output rows each lane computes per strip.
const B: u32 = 4;
/// Input rows per lane block (output rows + one-row halo on each side).
const BLOCK_ROWS: u32 = B + 2;
/// Grid rows per strip (8 lanes × B).
pub const STRIP_ROWS: u32 = 8 * B;

/// Benchmark sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StencilParams {
    /// Grid height; a positive multiple of 32.
    pub rows: u32,
    /// RNG seed for the grid.
    pub seed: u64,
}

impl Default for StencilParams {
    fn default() -> Self {
        StencilParams {
            rows: 64,
            seed: 0x5eed_0021,
        }
    }
}

const IN_BASE: u32 = 0;
const MID_BASE: u32 = 0x20_0000; // 5-point output, 9-point input
const OUT_BASE: u32 = 0x40_0000; // 9-point output

/// The tap set `(dy, dx, weight)` in the fixed accumulation order both
/// the kernels and the host reference use.
///
/// # Panics
///
/// Panics unless `points` is 5 or 9.
pub fn taps(points: u32) -> Vec<(i32, i32, f32)> {
    match points {
        5 => vec![
            (-1, 0, 0.125),
            (0, -1, 0.125),
            (0, 0, 0.5),
            (0, 1, 0.125),
            (1, 0, 0.125),
        ],
        9 => (-1..=1)
            .flat_map(|dy: i32| {
                (-1..=1).map(move |dx: i32| {
                    let w = match dy.abs() + dx.abs() {
                        0 => 0.25,
                        1 => 0.125,
                        _ => 0.0625,
                    };
                    (dy, dx, w)
                })
            })
            .collect(),
        other => panic!("stencil suite has 5- and 9-point kernels, not {other}"),
    }
}

/// Host reference for one pass, mirroring the kernel's accumulation
/// order bit-for-bit (boundary rows and columns clamped to the grid).
pub fn reference(grid: &[f32], rows: u32, points: u32) -> Vec<f32> {
    let t = taps(points);
    let mut out = vec![0.0f32; (rows * COLS) as usize];
    for r in 0..rows as i32 {
        for c in 0..COLS as i32 {
            let mut acc: Option<f32> = None;
            for &(dy, dx, w) in &t {
                let rr = (r + dy).clamp(0, rows as i32 - 1);
                let cc = (c + dx).clamp(0, COLS as i32 - 1);
                let m = grid[(rr as u32 * COLS + cc as u32) as usize] * w;
                acc = Some(match acc {
                    None => m,
                    Some(a) => a + m,
                });
            }
            out[(r as u32 * COLS + c as u32) as usize] = acc.expect("taps");
        }
    }
    out
}

/// ISRF kernel: iteration `i` emits output pixel `(ly = i >> 6,
/// x = i & 63)` of the lane's block, reading all taps from the resident
/// block (rows `ly .. ly+3`, the centre being halo-offset row `ly + 1`)
/// with in-lane indexed accesses over four streams. Columns are clamped
/// in-kernel; rows are clamped by the host load pattern.
pub fn build_isrf_kernel(points: u32) -> Kernel {
    let mut b = KernelBuilder::new(format!("stencil{points}_isrf"));
    let imgs: Vec<_> = (0..4)
        .map(|k| b.stream(format!("img{k}"), StreamKind::IdxInRead))
        .collect();
    let out = b.stream("out", StreamKind::SeqOut);

    let i = b.iter_id();
    let c6 = b.constant(6);
    let c63 = b.constant(63);
    let c1 = b.constant(1);
    let zero = b.constant(0);
    let ly = b.shr(i, c6);
    let x = b.and(i, c63);
    let row0 = b.shl(ly, c6);
    // Clamped columns for dx = -1, 0, +1.
    let xm = b.sub(x, c1);
    let xp = b.add(x, c1);
    let cols = [b.max(xm, zero), x, b.min(xp, c63)];
    // Block-row offsets for dy = -1, 0, +1 (centre is block row ly + 1).
    let rbases: Vec<_> = (0..3u32)
        .map(|k| {
            let c = b.constant(k * COLS);
            b.add(row0, c)
        })
        .collect();

    let mut acc = None;
    for (t, &(dy, dx, w)) in taps(points).iter().enumerate() {
        let addr = b.add(rbases[(dy + 1) as usize], cols[(dx + 1) as usize]);
        let v = b.idx_load(imgs[t % 4], addr);
        let c = b.constant_f(w);
        let m = b.fmul(v, c);
        acc = Some(match acc {
            None => m,
            Some(a) => b.fadd(a, m),
        });
    }
    b.seq_write(out, acc.expect("taps"));
    b.build().expect("stencil ISRF kernel is well-formed")
}

/// Base kernel: one pre-shifted sequential stream per tap; the kernel is
/// the bare weighted sum.
pub fn build_base_kernel(points: u32) -> Kernel {
    let mut b = KernelBuilder::new(format!("stencil{points}_base"));
    let t = taps(points);
    let ins: Vec<_> = (0..t.len())
        .map(|k| b.stream(format!("t{k}"), StreamKind::SeqIn))
        .collect();
    let out = b.stream("out", StreamKind::SeqOut);
    let mut acc = None;
    for (k, &(_, _, w)) in t.iter().enumerate() {
        let v = b.seq_read(ins[k]);
        let c = b.constant_f(w);
        let m = b.fmul(v, c);
        acc = Some(match acc {
            None => m,
            Some(a) => b.fadd(a, m),
        });
    }
    b.seq_write(out, acc.expect("taps"));
    b.build().expect("stencil base kernel is well-formed")
}

/// ISRF load pattern: lane `l`'s block holds grid rows
/// `row0 + l*B - 1 .. + BLOCK_ROWS`, clamped vertically to the grid.
fn block_load_pattern(base: u32, row0: u32, rows: u32) -> AddrPattern {
    let mut addrs = Vec::with_capacity((8 * BLOCK_ROWS * COLS) as usize);
    for lane in 0..8u32 {
        for br in 0..BLOCK_ROWS {
            let row = (row0 + lane * B + br) as i32 - 1;
            let row = row.clamp(0, rows as i32 - 1) as u32;
            for c in 0..COLS {
                addrs.push(base + row * COLS + c);
            }
        }
    }
    AddrPattern::Indexed(addrs)
}

/// ISRF store pattern: output record `l + 8*j` is row `j` of lane `l`
/// (grid row `row0 + l*B + j`).
fn block_store_pattern(base: u32, row0: u32) -> AddrPattern {
    let mut addrs = Vec::with_capacity((STRIP_ROWS * COLS) as usize);
    for j in 0..B {
        for lane in 0..8u32 {
            let row = row0 + lane * B + j;
            for c in 0..COLS {
                addrs.push(base + row * COLS + c);
            }
        }
    }
    AddrPattern::Indexed(addrs)
}

/// Base load pattern for one tap: record `r` is strip row `row0 + r`
/// shifted by `(dy, dx)` and clamped to the grid.
fn shifted_load_pattern(base: u32, row0: u32, rows: u32, dy: i32, dx: i32) -> AddrPattern {
    let mut addrs = Vec::with_capacity((STRIP_ROWS * COLS) as usize);
    for r in 0..STRIP_ROWS {
        let row = ((row0 + r) as i32 + dy).clamp(0, rows as i32 - 1) as u32;
        for c in 0..COLS as i32 {
            let col = (c + dx).clamp(0, COLS as i32 - 1) as u32;
            addrs.push(base + row * COLS + col);
        }
    }
    AddrPattern::Indexed(addrs)
}

/// The SRF stream pool, shared by both passes (the suite's passes are
/// fully serialized by dependencies, so reuse is hazard-free).
struct Streams {
    /// Base: one sequential stream per tap (9 covers both passes).
    ins: Vec<StreamBinding>,
    /// ISRF: the per-lane resident block.
    block: Option<StreamBinding>,
    /// Output rows (row records for Base, `l + 8*j` records for ISRF).
    out: StreamBinding,
}

fn alloc_streams(m: &mut Machine, indexed: bool) -> Streams {
    if indexed {
        Streams {
            ins: Vec::new(),
            block: Some(m.alloc_stream(BLOCK_ROWS * COLS, 8)),
            out: m.alloc_stream(COLS, STRIP_ROWS),
        }
    } else {
        Streams {
            ins: (0..9).map(|_| m.alloc_stream(COLS, STRIP_ROWS)).collect(),
            block: None,
            out: m.alloc_stream(COLS, STRIP_ROWS),
        }
    }
}

/// Emit one full pass (`in_base` → `out_base`) into `p`; returns the
/// pass's store ops (the barrier for a dependent pass).
#[allow(clippy::too_many_arguments)]
fn emit_pass(
    p: &mut StreamProgram,
    indexed: bool,
    rows: u32,
    points: u32,
    kernel: &Arc<Kernel>,
    sched: &Arc<Schedule>,
    streams: &Streams,
    in_base: u32,
    out_base: u32,
    deps: &[ProgOpId],
) -> Vec<ProgOpId> {
    let t = taps(points);
    let mut stores = Vec::new();
    let mut prev: Option<ProgOpId> = None;
    for strip in 0..rows / STRIP_ROWS {
        let row0 = strip * STRIP_ROWS;
        let mut ldeps: Vec<ProgOpId> = deps.to_vec();
        if let Some(pk) = prev {
            ldeps.push(pk);
        }
        let (loads, bindings, iters) = if indexed {
            let block = streams.block.expect("indexed pool has a block");
            let load = p.load(
                block_load_pattern(in_base, row0, rows),
                block,
                false,
                &ldeps,
            );
            // Four in-lane indexed views of the block + the output.
            let view = StreamBinding::whole(block.range, 1, BLOCK_ROWS * COLS * 8);
            (
                vec![load],
                vec![view, view, view, view, streams.out],
                (B * COLS) as u64,
            )
        } else {
            let mut loads = Vec::with_capacity(t.len());
            let mut bindings = Vec::with_capacity(t.len() + 1);
            for (k, &(dy, dx, _)) in t.iter().enumerate() {
                loads.push(p.load(
                    shifted_load_pattern(in_base, row0, rows, dy, dx),
                    streams.ins[k],
                    false,
                    &ldeps,
                ));
                bindings.push(streams.ins[k]);
            }
            bindings.push(streams.out);
            (loads, bindings, (STRIP_ROWS * COLS / 8) as u64)
        };
        let k = p.kernel(
            Arc::clone(kernel),
            Arc::clone(sched),
            bindings,
            iters,
            &loads,
        );
        let pattern = if indexed {
            block_store_pattern(out_base, row0)
        } else {
            AddrPattern::contiguous(out_base + row0 * COLS, STRIP_ROWS * COLS)
        };
        let st = p.store(streams.out, pattern, false, &[k]);
        stores.push(st);
        prev = Some(st);
    }
    stores
}

fn lay_out_grid(m: &mut Machine, params: &StencilParams) -> Vec<f32> {
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let grid: Vec<f32> = (0..params.rows * COLS)
        .map(|_| rng.gen_range(0.0f32..1.0))
        .collect();
    let words: Vec<Word> = grid.iter().map(|&v| from_f32(v)).collect();
    m.mem_mut().memory_mut().write_block(IN_BASE, &words);
    grid
}

fn check_rows(params: &StencilParams) {
    assert!(
        params.rows.is_multiple_of(STRIP_ROWS) && params.rows >= STRIP_ROWS,
        "rows must be a positive multiple of {STRIP_ROWS}"
    );
}

/// Set up the machine and build the full two-pass suite (5-point on the
/// input grid, 9-point on its output) without running it.
///
/// # Panics
///
/// Panics if `params.rows` is not a positive multiple of 32.
pub fn prepare(cfg: ConfigName, params: &StencilParams) -> crate::common::Prepared {
    check_rows(params);
    let indexed = matches!(cfg, ConfigName::Isrf1 | ConfigName::Isrf4);
    let mut m = machine(cfg);
    lay_out_grid(&mut m, params);

    let build = |points| {
        Arc::new(if indexed {
            build_isrf_kernel(points)
        } else {
            build_base_kernel(points)
        })
    };
    let k5 = build(5);
    let k9 = build(9);
    let s5 = schedule_for(&m, &k5);
    let s9 = schedule_for(&m, &k9);
    let streams = alloc_streams(&mut m, indexed);

    let mut p = StreamProgram::new();
    let rows = params.rows;
    let pass1 = emit_pass(
        &mut p,
        indexed,
        rows,
        5,
        &k5,
        &s5,
        &streams,
        IN_BASE,
        MID_BASE,
        &[],
    );
    emit_pass(
        &mut p, indexed, rows, 9, &k9, &s9, &streams, MID_BASE, OUT_BASE, &pass1,
    );
    crate::common::Prepared::new(m, p, vec![(MID_BASE, rows * COLS), (OUT_BASE, rows * COLS)])
}

/// Set up a single pass (5- or 9-point, input grid → `OUT_BASE`) — the
/// smallest traceable unit, used by the golden trace test.
///
/// # Panics
///
/// Panics if `params.rows` is not a positive multiple of 32 or `points`
/// is not 5 or 9.
pub fn prepare_pass(
    cfg: ConfigName,
    params: &StencilParams,
    points: u32,
) -> crate::common::Prepared {
    check_rows(params);
    let indexed = matches!(cfg, ConfigName::Isrf1 | ConfigName::Isrf4);
    let mut m = machine(cfg);
    lay_out_grid(&mut m, params);
    let kernel = Arc::new(if indexed {
        build_isrf_kernel(points)
    } else {
        build_base_kernel(points)
    });
    let sched = schedule_for(&m, &kernel);
    let streams = alloc_streams(&mut m, indexed);
    let mut p = StreamProgram::new();
    emit_pass(
        &mut p,
        indexed,
        params.rows,
        points,
        &kernel,
        &sched,
        &streams,
        IN_BASE,
        OUT_BASE,
        &[],
    );
    crate::common::Prepared::new(m, p, vec![(OUT_BASE, params.rows * COLS)])
}

/// Run the two-pass suite on `cfg`; both pass outputs are verified
/// bit-for-bit against the mirrored host reference.
///
/// # Panics
///
/// Panics if either pass differs from the host reference in any bit.
pub fn run(cfg: ConfigName, params: &StencilParams) -> RunStats {
    let mut pr = prepare(cfg, params);
    let stats = pr.machine.run(&pr.program);

    let rows = params.rows;
    let grid: Vec<f32> = {
        let mut rng = SmallRng::seed_from_u64(params.seed);
        (0..rows * COLS)
            .map(|_| rng.gen_range(0.0f32..1.0))
            .collect()
    };
    let mid = reference(&grid, rows, 5);
    let out = reference(&mid, rows, 9);
    for (base, expect) in [(MID_BASE, &mid), (OUT_BASE, &out)] {
        for (i, &e) in expect.iter().enumerate() {
            let got = pr.machine.mem().memory().read(base + i as u32);
            assert_eq!(
                got,
                from_f32(e),
                "word {i} at {base:#x}: got {:?}, want {e:?} (bit-exact mirror)",
                isrf_core::word::as_f32(got)
            );
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> StencilParams {
        StencilParams { rows: 32, seed: 13 }
    }

    #[test]
    fn kernels_build_and_schedule() {
        let m = machine(ConfigName::Isrf4);
        schedule_for(&m, &build_isrf_kernel(5));
        schedule_for(&m, &build_isrf_kernel(9));
        let m = machine(ConfigName::Base);
        schedule_for(&m, &build_base_kernel(5));
        schedule_for(&m, &build_base_kernel(9));
    }

    #[test]
    fn base_functional() {
        run(ConfigName::Base, &small());
    }

    #[test]
    fn isrf_functional() {
        run(ConfigName::Isrf4, &small());
    }

    #[test]
    fn cache_functional() {
        run(ConfigName::Cache, &small());
    }

    #[test]
    fn single_pass_matches_reference() {
        for points in [5, 9] {
            let params = small();
            let mut pr = prepare_pass(ConfigName::Isrf4, &params, points);
            pr.machine.run(&pr.program);
            let grid: Vec<f32> = {
                let mut rng = SmallRng::seed_from_u64(params.seed);
                (0..params.rows * COLS)
                    .map(|_| rng.gen_range(0.0f32..1.0))
                    .collect()
            };
            let expect = reference(&grid, params.rows, points);
            for (i, &e) in expect.iter().enumerate() {
                assert_eq!(
                    pr.machine.mem().memory().read(OUT_BASE + i as u32),
                    from_f32(e)
                );
            }
        }
    }

    #[test]
    fn isrf_cuts_traffic_by_tap_reuse() {
        // Base streams a shifted grid copy per tap; ISRF loads each word
        // once per pass (plus the halo). 14 taps of traffic vs ~2 passes.
        let params = small();
        let base = run(ConfigName::Base, &params);
        let isrf = run(ConfigName::Isrf4, &params);
        let ratio = isrf.mem.normalized_to(&base.mem);
        assert!(ratio < 0.5, "traffic ratio {ratio:.3}");
        assert!(isrf.srf.inlane_words > 0, "taps are in-lane indexed reads");
        assert_eq!(isrf.srf.crosslane_words, 0);
    }
}
