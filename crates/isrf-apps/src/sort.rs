//! The Sort benchmark — Section 5.2: sorting 4096 32-bit keys.
//!
//! Data-dependent merging is where a sequential SRF hurts: consuming two
//! runs at data-dependent rates needs conditional streams, with their
//! cross-lane communication and bookkeeping on every element. With an
//! indexed SRF, "the conditional inputs are formulated as conditional
//! address computations": a two-pointer merge whose next read address is a
//! `select` of the two run cursors, all cluster-local.
//!
//! * **ISRF**: each cluster merge-sorts its bank-resident keys with
//!   `log2(n)` two-pointer merge passes over in-lane indexed reads. The
//!   merge pointers form a loop-carried dependence *through the indexed
//!   access*, which is exactly why the Sort kernels' schedule length
//!   tracks the address/data separation in Figure 14.
//! * **Base/Cache**: without indexed access the kernels must use
//!   position-based (data-independent) access patterns, so the baseline
//!   runs a bitonic sorting network over strided stream windows —
//!   asymptotically more comparisons (O(n log² n) compare-exchanges), the
//!   algorithmic overhead conditional/indexed access exists to avoid.
//!
//! Both versions leave each bank's keys fully sorted (8 sorted runs of
//! n/8); the final 8-way combine is configuration-independent and omitted,
//! as noted in EXPERIMENTS.md. Output is validated for sortedness and
//! multiset equality with the input.

use std::sync::Arc;

use isrf_core::config::ConfigName;
use isrf_core::stats::RunStats;
use isrf_core::Word;
use isrf_kernel::ir::{Kernel, KernelBuilder, Operand, StreamKind};
use isrf_mem::AddrPattern;
use isrf_sim::{StreamBinding, StreamProgram};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::common::{machine, schedule_for};

/// Benchmark sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SortParams {
    /// Keys per lane (total = 8x this); power of two. The paper sorts
    /// 4096 keys = 512 per lane.
    pub keys_per_lane: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SortParams {
    fn default() -> Self {
        SortParams {
            keys_per_lane: 512,
            seed: 0x5eed_0004,
        }
    }
}

const IN_BASE: u32 = 0;
const OUT_BASE: u32 = 0x40_0000;

/// Pair-interleave factor for a merge pass: early passes have many
/// independent run-pairs per lane and interleave up to 4 of them, pushing
/// the pointer recurrence to a loop-carried distance of 4; late passes
/// degenerate to the fully serial distance-1 case.
pub fn merge_interleave(run: u32, keys_per_lane: u32) -> u32 {
    (keys_per_lane / (2 * run)).clamp(1, 4)
}

/// ISRF merge pass kernel: one two-pointer merge step with run length
/// `run` over `keys_per_lane` lane-local keys, reading via conditional
/// address computation (in-lane indexed) and writing merged elements with
/// in-lane indexed writes. `interleave` independent pairs are processed
/// round-robin, so the pointer recurrence has that loop-carried distance.
pub fn build_merge_kernel(run: u32, keys_per_lane: u32) -> Kernel {
    let il = merge_interleave(run, keys_per_lane);
    let mut b = KernelBuilder::new(format!("sort_merge_{run}"));
    let data = b.stream("data", StreamKind::IdxInRead);
    let out = b.stream("out", StreamKind::IdxInWrite);

    // i -> group g of `il` pairs; within the group, output slot o of
    // pair p (p varies fastest).
    let i = b.iter_id();
    let group_words = 2 * run * il;
    let gsh = b.constant(group_words.trailing_zeros());
    let gmask = b.constant(group_words - 1);
    let psh = b.constant(il.trailing_zeros());
    let pmask = b.constant(il - 1);
    let g = b.shr(i, gsh);
    let ii = b.and(i, gmask);
    let p_local = b.and(ii, pmask);
    let o = b.shr(ii, psh);
    let gp = b.shl(g, psh);
    let pair = b.or(gp, p_local);
    let lsh = b.constant((2 * run).trailing_zeros());
    let pair_base = b.shl(pair, lsh);
    let cl = b.constant(run);
    let end_a = b.add(pair_base, cl);
    let c2l = b.constant(2 * run);
    let end_b = b.add(pair_base, c2l);
    let zero = b.constant(0);
    let reset = b.eq(o, zero);

    // Loop-carried cursors at distance `il` (patched below). Exhausted
    // cursors sit one past their run end; the binding pads the region by a
    // word so the (masked-out) load stays legal. Keys are < 2^31, so
    // signed comparisons are exact and save flag inversions.
    let pa_hold = b.mov(zero);
    let pb_hold = b.mov(zero);
    let pa = b.select(reset, pair_base, pa_hold);
    let pb = b.select(reset, end_a, pb_hold);
    let a = b.idx_load(data, pa);
    let bb = b.idx_load(data, pb);
    let a_valid = b.lt(pa, end_a);
    let b_done = b.le(end_b, pb);
    let a_le_b = b.le(a, bb);
    let either = b.or(b_done, a_le_b);
    let take_a = b.and(a_valid, either);
    let v = b.select(take_a, a, bb);
    let pa_next = b.add(pa, take_a);
    let one = b.constant(1);
    let not_take = b.xor(take_a, one);
    let pb_next = b.add(pb, not_take);
    let waddr = b.add(pair_base, o);
    b.idx_write(out, waddr, v);

    b.set_operand(pa_hold, 0, Operand::carried(pa_next, il, 0));
    b.set_operand(pb_hold, 0, Operand::carried(pb_next, il, 0));
    b.build().expect("merge kernel is well-formed")
}

/// Base conditional-stream merge kernel: the same two-pointer merge, but
/// candidates arrive through per-lane conditional stream reads (\[16\]).
/// Every refill crosses the inter-cluster network, the candidate/occupancy
/// bookkeeping adds ALU work, and the interleaved-pair trick is
/// unavailable (outputs must leave through the sequential stream in
/// order), so the pointer recurrence runs at distance 1 — the "cross-lane
/// communication on every iteration" the paper attributes to the baseline.
pub fn build_cond_merge_kernel(run: u32) -> Kernel {
    let mut b = KernelBuilder::new(format!("sort_cond_merge_{run}"));
    let sa = b.stream("A", StreamKind::CondLaneIn);
    let sb = b.stream("B", StreamKind::CondLaneIn);
    let out = b.stream("out", StreamKind::SeqOut);

    let i = b.iter_id();
    let mask = b.constant(2 * run - 1);
    let o = b.and(i, mask);
    let zero = b.constant(0);
    let reset = b.eq(o, zero);
    let runc = b.constant(run);

    // Carried state (patched below): candidate values, consumed counts,
    // and the precomputed "refill next iteration" flags.
    let a_prev = b.mov(zero);
    let b_prev = b.mov(zero);
    let na_prev = b.mov(zero);
    let nb_prev = b.mov(zero);
    let need_a_carry = b.mov(zero);
    let need_b_carry = b.mov(zero);

    let na = b.select(reset, zero, na_prev);
    let nb = b.select(reset, zero, nb_prev);
    let need_a = b.or(reset, need_a_carry);
    let need_b = b.or(reset, need_b_carry);
    let pa = b.cond_lane_read(sa, need_a);
    let pb = b.cond_lane_read(sb, need_b);
    let av = b.select(need_a, pa, a_prev);
    let bv = b.select(need_b, pb, b_prev);

    let a_valid = b.lt(na, runc);
    let b_done = b.le(runc, nb);
    let a_le_b = b.le(av, bv);
    let either = b.or(b_done, a_le_b);
    let take_a = b.and(a_valid, either);
    let v = b.select(take_a, av, bv);
    let na_next = b.add(na, take_a);
    let one = b.constant(1);
    let not_take = b.xor(take_a, one);
    let nb_next = b.add(nb, not_take);
    // Refill only while the run still has unpopped elements.
    let more_a = b.lt(na_next, runc);
    let need_next_a = b.and(take_a, more_a);
    let more_b = b.lt(nb_next, runc);
    let need_next_b = b.and(not_take, more_b);
    b.seq_write(out, v);

    b.set_operand(a_prev, 0, Operand::carried(av, 1, 0));
    b.set_operand(b_prev, 0, Operand::carried(bv, 1, 0));
    b.set_operand(na_prev, 0, Operand::carried(na_next, 1, 0));
    b.set_operand(nb_prev, 0, Operand::carried(nb_next, 1, 0));
    b.set_operand(need_a_carry, 0, Operand::carried(need_next_a, 1, 0));
    b.set_operand(need_b_carry, 0, Operand::carried(need_next_b, 1, 0));
    b.build().expect("conditional merge kernel is well-formed")
}

/// Base bitonic compare-exchange kernel for level `k`, distance `d` (both
/// lane-local): strided windows pair elements `d` apart; ascending blocks
/// follow bit `k` of the element index.
pub fn build_bitonic_kernel(k: u32, d: u32) -> Kernel {
    let mut b = KernelBuilder::new(format!("sort_ce_{k}_{d}"));
    let ina = b.stream("inA", StreamKind::SeqIn);
    let inb = b.stream("inB", StreamKind::SeqIn);
    let outa = b.stream("outA", StreamKind::SeqOut);
    let outb = b.stream("outB", StreamKind::SeqOut);
    // Lane-local index of this iteration's A element: t = (i/d)*2d + i%d.
    let i = b.iter_id();
    let dm1 = b.constant(d.wrapping_sub(1));
    let logd = b.constant(d.trailing_zeros());
    let logd1 = b.constant(d.trailing_zeros() + 1);
    let im = b.and(i, dm1);
    let id = b.shr(i, logd);
    let hi = b.shl(id, logd1);
    let t = b.or(hi, im);
    // Ascending iff bit k of t is clear.
    let ck = b.constant(k);
    let bit = b.shr(t, ck);
    let one = b.constant(1);
    let dirbit = b.and(bit, one);
    let zero = b.constant(0);
    let asc = b.eq(dirbit, zero);
    let a = b.seq_read(ina);
    let bb = b.seq_read(inb);
    let lo = b.min(a, bb);
    let hi_v = b.max(a, bb);
    let oa = b.select(asc, lo, hi_v);
    let ob = b.select(asc, hi_v, lo);
    b.seq_write(outa, oa);
    b.seq_write(outb, ob);
    b.build().expect("bitonic kernel is well-formed")
}

fn lay_out_keys(m: &mut isrf_sim::Machine, params: &SortParams) -> Vec<Word> {
    let n = params.keys_per_lane * 8;
    let mut rng = SmallRng::seed_from_u64(params.seed);
    // Keys below 2^31 so signed min/max in the bitonic kernel is exact.
    let keys: Vec<Word> = (0..n).map(|_| rng.gen_range(0..0x7fff_ffff)).collect();
    m.mem_mut().memory_mut().write_block(IN_BASE, &keys);
    keys
}

fn verify(m: &isrf_sim::Machine, params: &SortParams) {
    let n = params.keys_per_lane * 8;
    // The input keys survive untouched at IN_BASE.
    let keys: Vec<Word> = (0..n).map(|i| m.mem().memory().read(IN_BASE + i)).collect();
    let out: Vec<Word> = (0..n)
        .map(|i| m.mem().memory().read(OUT_BASE + i))
        .collect();
    // Lane l's run is elements l, l+8, ...: each must be sorted.
    for l in 0..8u32 {
        let lane: Vec<Word> = (0..params.keys_per_lane)
            .map(|k| out[(k * 8 + l) as usize])
            .collect();
        assert!(
            lane.windows(2).all(|w| w[0] <= w[1]),
            "lane {l} is not sorted"
        );
    }
    let mut a = keys.to_vec();
    let mut b = out;
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b, "output is not a permutation of the input");
}

/// Prepare the ISRF version: log2(n) two-pointer merge passes per lane.
fn prepare_isrf(cfg: ConfigName, params: &SortParams) -> crate::common::Prepared {
    let mut m = machine(cfg);
    lay_out_keys(&mut m, params);
    let n = params.keys_per_lane * 8;
    // One extra word per lane pads the regions for exhausted-cursor loads.
    let x = m.alloc_stream(1, n + 8).slice(0, n);
    let y = m.alloc_stream(1, n + 8).slice(0, n);

    let mut p = StreamProgram::new();
    let load = p.load(AddrPattern::contiguous(IN_BASE, n), x, false, &[]);
    let mut cur = x;
    let mut other = y;
    let mut last = load;
    let mut run = 1;
    while run < params.keys_per_lane {
        let k = Arc::new(build_merge_kernel(run, params.keys_per_lane));
        let s = schedule_for(&m, &k);
        // In-lane indexed views of the whole local array, read and write.
        // The read view is padded by one word per lane: an exhausted merge
        // cursor sits one past its run, and its (ignored) load must be
        // in range.
        let view = StreamBinding::whole(cur.range, 1, n + 8);
        let wview = StreamBinding::whole(other.range, 1, n);
        last = p.kernel(
            Arc::clone(&k),
            s,
            vec![view, wview],
            params.keys_per_lane as u64,
            &[last],
        );
        std::mem::swap(&mut cur, &mut other);
        run *= 2;
    }
    p.store(cur, AddrPattern::contiguous(OUT_BASE, n), false, &[last]);
    crate::common::Prepared::new(m, p, vec![(OUT_BASE, n)])
}

/// Prepare the Base/Cache version: conditional-stream merge passes.
fn prepare_base(cfg: ConfigName, params: &SortParams) -> crate::common::Prepared {
    let mut m = machine(cfg);
    lay_out_keys(&mut m, params);
    let n = params.keys_per_lane * 8;
    let x = m.alloc_stream(1, n);
    let y = m.alloc_stream(1, n);

    let mut p = StreamProgram::new();
    let load = p.load(AddrPattern::contiguous(IN_BASE, n), x, false, &[]);
    let mut cur = x;
    let mut other = y;
    let mut last = load;
    let mut run = 1;
    while run < params.keys_per_lane {
        let k = Arc::new(build_cond_merge_kernel(run));
        let s = schedule_for(&m, &k);
        // The A substream covers each lane's left runs, B the right runs:
        // stream records alternate run-sized blocks, which (in lane-record
        // space) are windows of 8*run records with stride 16*run.
        let sd = 8 * run;
        let runs = n / (2 * sd);
        let a_in = StreamBinding::windowed(cur.range, 1, 0, sd, 2 * sd, runs);
        let b_in = StreamBinding::windowed(cur.range, 1, sd, sd, 2 * sd, runs);
        last = p.kernel(
            Arc::clone(&k),
            s,
            vec![a_in, b_in, other],
            params.keys_per_lane as u64,
            &[last],
        );
        std::mem::swap(&mut cur, &mut other);
        run *= 2;
    }
    p.store(cur, AddrPattern::contiguous(OUT_BASE, n), false, &[last]);
    crate::common::Prepared::new(m, p, vec![(OUT_BASE, n)])
}

/// Ablation: the baseline recast as a bitonic sorting network over strided
/// stream windows (data-independent accesses; more comparison stages).
pub fn run_base_bitonic(cfg: ConfigName, params: &SortParams) -> RunStats {
    let mut m = machine(cfg);
    lay_out_keys(&mut m, params);
    let n = params.keys_per_lane * 8;
    let x = m.alloc_stream(1, n);
    let y = m.alloc_stream(1, n);

    let mut p = StreamProgram::new();
    let load = p.load(AddrPattern::contiguous(IN_BASE, n), x, false, &[]);
    let mut cur = x;
    let mut other = y;
    let mut last = load;
    let levels = params.keys_per_lane.trailing_zeros();
    for k in 1..=levels {
        for j in (0..k).rev() {
            let d = 1u32 << j; // lane-local distance; stream distance 8d
            let kern = Arc::new(build_bitonic_kernel(k, d));
            let s = schedule_for(&m, &kern);
            let sd = 8 * d;
            let runs = n / (2 * sd);
            let a_in = StreamBinding::windowed(cur.range, 1, 0, sd, 2 * sd, runs);
            let b_in = StreamBinding::windowed(cur.range, 1, sd, sd, 2 * sd, runs);
            let a_out = StreamBinding::windowed(other.range, 1, 0, sd, 2 * sd, runs);
            let b_out = StreamBinding::windowed(other.range, 1, sd, sd, 2 * sd, runs);
            last = p.kernel(
                Arc::clone(&kern),
                s,
                vec![a_in, b_in, a_out, b_out],
                (params.keys_per_lane / 2) as u64,
                &[last],
            );
            std::mem::swap(&mut cur, &mut other);
        }
    }
    let st = p.store(cur, AddrPattern::contiguous(OUT_BASE, n), false, &[last]);
    let _ = st;
    let stats = m.run(&p);
    verify(&m, params);
    stats
}

/// Set up the machine (key layout) and build the measured program without
/// running it.
///
/// # Panics
///
/// Panics if `params.keys_per_lane` is not a power of two ≥ 2.
pub fn prepare(cfg: ConfigName, params: &SortParams) -> crate::common::Prepared {
    assert!(
        params.keys_per_lane.is_power_of_two() && params.keys_per_lane >= 2,
        "keys_per_lane must be a power of two"
    );
    match cfg {
        ConfigName::Isrf1 | ConfigName::Isrf4 => prepare_isrf(cfg, params),
        ConfigName::Base | ConfigName::Cache => prepare_base(cfg, params),
    }
}

/// Run the benchmark; output sortedness and permutation are verified.
///
/// # Panics
///
/// Panics on invalid sizing or if the output fails verification.
pub fn run(cfg: ConfigName, params: &SortParams) -> RunStats {
    let mut pr = prepare(cfg, params);
    let stats = pr.machine.run(&pr.program);
    verify(&pr.machine, params);
    stats
}

/// The Sort1 kernel used by the parameter studies (Figures 13–15): a
/// mid-sort merge pass (two run-pairs still interleave, so the pointer
/// recurrence is damped but visible).
pub fn sort1_kernel() -> Kernel {
    build_merge_kernel(128, 512)
}

/// The Sort2 kernel used by the parameter studies: a late merge pass with
/// long runs.
pub fn sort2_kernel() -> Kernel {
    build_merge_kernel(256, 512)
}

#[cfg(test)]
mod tests {
    use super::*;
    use isrf_kernel::sched::{schedule, SchedParams};

    fn small() -> SortParams {
        SortParams {
            keys_per_lane: 64,
            seed: 21,
        }
    }

    #[test]
    fn kernels_build_and_schedule() {
        let m = machine(ConfigName::Isrf4);
        schedule_for(&m, &build_merge_kernel(8, 512));
        let m = machine(ConfigName::Base);
        schedule_for(&m, &build_bitonic_kernel(3, 4));
    }

    #[test]
    fn isrf_functional() {
        run(ConfigName::Isrf4, &small());
    }

    #[test]
    fn base_functional() {
        run(ConfigName::Base, &small());
    }

    #[test]
    fn isrf_wins_via_shorter_kernel_time() {
        let params = small();
        let base = run(ConfigName::Base, &params);
        let isrf = run(ConfigName::Isrf4, &params);
        let speedup = isrf.speedup_over(&base);
        assert!(
            speedup > 1.1,
            "speedup {speedup:.2} (paper: ~1.35x from conditional-access efficiency)"
        );
        // No memory-traffic advantage (Figure 11: Sort ratio = 1.0).
        let ratio = isrf.mem.normalized_to(&base.mem);
        assert!((0.9..=1.1).contains(&ratio), "traffic ratio {ratio:.3}");
    }

    #[test]
    fn merge_kernel_ii_tracks_separation() {
        // The Figure 14 property: the merge pointers' recurrence runs
        // through the indexed access, so II grows with the separation.
        // Sort2 (serial late pass) shows it most strongly.
        let k = sort2_kernel();
        let base = SchedParams::from_machine(machine(ConfigName::Isrf4).config());
        let mut iis = vec![];
        for sep in [2u32, 6, 10] {
            let p = base.clone().with_separations(sep, 20);
            iis.push(schedule(&k, &p).unwrap().ii);
        }
        assert!(iis[1] > iis[0] && iis[2] > iis[1], "IIs {iis:?}");
    }
}
