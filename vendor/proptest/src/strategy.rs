//! The [`Strategy`] trait plus range, tuple, constant and map strategies.

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy
/// just samples.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_maps() {
        let mut rng = TestRng::deterministic("strategy::tests");
        for _ in 0..200 {
            let x = (5u32..9).sample(&mut rng);
            assert!((5..9).contains(&x));
            let y = (-3i32..=3).sample(&mut rng);
            assert!((-3..=3).contains(&y));
            let (a, b) = ((0u8..4), Just(7u32)).sample(&mut rng);
            assert!(a < 4 && b == 7);
            let m = (0u32..10).prop_map(|v| v * 3).sample(&mut rng);
            assert!(m % 3 == 0 && m < 30);
        }
    }
}
