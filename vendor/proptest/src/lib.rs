//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of the proptest API its property tests
//! use: the [`proptest!`] macro (with `#![proptest_config(...)]`),
//! [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! [`arbitrary::any`], range and tuple strategies, `prop_map`,
//! [`collection::vec`] and [`sample::Index`].
//!
//! Semantics differ from real proptest in two deliberate ways: cases are
//! generated from a seed derived deterministically from the test's module
//! path and name (reproducible across runs and machines, no persistence
//! files), and failing cases are *not* shrunk — the panic reports the
//! case number and assertion message only.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// The subset of `proptest::prelude` the workspace uses.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace alias matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

/// Define property tests.
///
/// Supports the forms used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     /// Doc comment.
///     #[test]
///     fn my_property(x in 0u32..100, v in prop::collection::vec(any::<u8>(), 1..20)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $( $pat:pat in $strat:expr ),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..config.cases {
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        { $body }
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest `{}`: case {}/{} failed: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Assert inside a property body; failure aborts only the current case
/// with a message (no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}`", l, r),
            ));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}`: {}", l, r, format!($($fmt)+)),
            ));
        }
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        if *l == *r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` != `{:?}`", l, r),
            ));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        if *l == *r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` != `{:?}`: {}", l, r, format!($($fmt)+)),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges, tuples, vec and Index compose and stay in bounds.
        #[test]
        fn strategies_compose(
            x in 0u32..100,
            (a, b) in (any::<u8>(), any::<bool>()),
            v in prop::collection::vec(any::<u32>(), 1..20),
            idx in any::<prop::sample::Index>(),
            y in (0u32..10).prop_map(|k| k * 2),
        ) {
            prop_assert!(x < 100);
            let _ = (a, b);
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(idx.index(v.len()) < v.len());
            prop_assert!(y % 2 == 0 && y < 20, "y = {}", y);
        }

        /// Inclusive vec sizes reach both ends eventually.
        #[test]
        fn inclusive_sizes(v in prop::collection::vec(any::<u8>(), 3..=5)) {
            prop_assert!((3..=5).contains(&v.len()));
        }
    }

    #[test]
    fn failures_report_case() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(4))]
                #[allow(unused)]
                fn always_fails(x in 0u32..10) {
                    prop_assert!(x > 100, "x was {}", x);
                }
            }
            always_fails();
        });
        assert!(result.is_err());
    }
}
