//! Test configuration, RNG and case-failure error type.

use std::fmt;

/// Per-test configuration (only `cases` is honoured by this stand-in).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single case failed (carried out of the test body by the
/// `prop_assert*` macros).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed-assertion error.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// The generator driving all strategies (xoshiro256++).
///
/// Seeded from a hash of the test's module path and name, so every run of
/// a given test sees the same case sequence — reproducible without the
/// failure-persistence files real proptest writes.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Seed deterministically from a test identifier.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the identifier, then SplitMix64 expansion.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let mut state = h;
        TestRng {
            s: [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::TestRng;

    #[test]
    fn deterministic_and_name_sensitive() {
        let mut a = TestRng::deterministic("mod::test_a");
        let mut b = TestRng::deterministic("mod::test_a");
        let mut c = TestRng::deterministic("mod::test_b");
        let va: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..4).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }
}
