//! [`Arbitrary`] and the [`any`] strategy constructor.

use core::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Uniform in [0, 1) rather than "any bit pattern": every use in
        // this workspace wants finite values.
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_workspace_types() {
        let mut rng = TestRng::deterministic("arbitrary::tests");
        let _: u8 = any::<u8>().sample(&mut rng);
        let _: u32 = any::<u32>().sample(&mut rng);
        let _: bool = any::<bool>().sample(&mut rng);
        let f = any::<f32>().sample(&mut rng);
        assert!((0.0..1.0).contains(&f));
    }
}
