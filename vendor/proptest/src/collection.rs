//! Collection strategies (`vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive size band for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_inclusive: n,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max_inclusive: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max_inclusive: *r.end(),
        }
    }
}

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.max_inclusive - self.size.min + 1;
        let len = self.size.min + rng.below(span as u64) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// A strategy for `Vec`s whose length falls in `size` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn lengths_respect_bounds() {
        let mut rng = TestRng::deterministic("collection::tests");
        let half_open = vec(any::<u8>(), 2..5);
        let inclusive = vec(any::<u8>(), 3..=3);
        for _ in 0..100 {
            let a = half_open.sample(&mut rng);
            assert!((2..5).contains(&a.len()));
            assert_eq!(inclusive.sample(&mut rng).len(), 3);
        }
    }
}
