//! Sampling helpers ([`Index`]).

use crate::arbitrary::Arbitrary;
use crate::test_runner::TestRng;

/// A position into a collection of as-yet-unknown size.
///
/// Generated via `any::<prop::sample::Index>()`; call [`Index::index`]
/// with the collection length to resolve it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(u64);

impl Index {
    /// Resolve against a collection of `len` elements.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on empty collection");
        (self.0 % len as u64) as usize
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        Index(rng.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_in_bounds() {
        let mut rng = TestRng::deterministic("sample::tests");
        for _ in 0..100 {
            let ix = Index::arbitrary(&mut rng);
            for len in [1usize, 2, 7, 1000] {
                assert!(ix.index(len) < len);
            }
        }
    }
}
