//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of the criterion API its benches use:
//! [`Criterion::benchmark_group`], `sample_size`, `bench_function`
//! (with `Bencher::iter`), `finish`, and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Timing is a plain mean over the sample
//! count — no warm-up calibration, outlier analysis or HTML reports —
//! which is enough to run `cargo bench` targets and print figure rows.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export of the standard black box, used to defeat optimisation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Run one stand-alone benchmark and print its mean time.
    pub fn bench_function<S, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        let mean = if b.iters > 0 {
            b.total / b.iters as u32
        } else {
            Duration::ZERO
        };
        println!("{}: {:?} mean of {} iters", id, mean, b.iters);
        self
    }
}

/// A named group of benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Run one benchmark and print its mean time.
    pub fn bench_function<S, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        let mean = if b.iters > 0 {
            b.total / b.iters as u32
        } else {
            Duration::ZERO
        };
        println!("{}/{}: {:?} mean of {} iters", self.name, id, mean, b.iters);
        self
    }

    /// End the group (printing happens per benchmark, so this is a no-op).
    pub fn finish(self) {}
}

/// Passed to the closure given to `bench_function`.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: usize,
}

impl Bencher {
    /// Time `f` over the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.total += start.elapsed();
            self.iters += 1;
        }
    }
}

/// Collect benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_counts_iters() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("test");
        g.sample_size(3);
        let mut runs = 0;
        g.bench_function("count", |b| b.iter(|| runs += 1));
        g.finish();
        assert_eq!(runs, 3);
    }
}
