//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of the `rand 0.8` API it actually
//! uses: [`SeedableRng::seed_from_u64`], [`rngs::SmallRng`], the
//! [`Rng::gen`] / [`Rng::gen_range`] methods and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256++ seeded
//! through SplitMix64 — deterministic for a given seed, which is all the
//! benchmarks and tests rely on (they never assume a specific sequence).

#![forbid(unsafe_code)]

/// A source of random bits.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Sampling of a "standard" value of a type, backing [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A range argument to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value inside the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty gen_range range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty gen_range range");
        let u = f32::sample(rng);
        let v = self.start + u * (self.end - self.start);
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range range");
        let u = f64::sample(rng);
        let v = self.start + u * (self.end - self.start);
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a "standard" value (full-range integer, `[0, 1)` float).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from `range`.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Sample a bool that is true with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias used by the `std_rng` feature of the real crate.
    pub type StdRng = SmallRng;
}

/// Sequence helpers.
pub mod seq {
    use super::RngCore;

    /// Shuffling of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let va: Vec<u32> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u32> = (0..8).map(|_| b.gen()).collect();
        assert_eq!(va, vb);
        let mut c = SmallRng::seed_from_u64(8);
        let vc: Vec<u32> = (0..8).map(|_| c.gen()).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u32 = r.gen_range(0..10);
            assert!(x < 10);
            let y = r.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&y));
            let f = r.gen_range(0.0f32..1.0);
            assert!((0.0..1.0).contains(&f));
            let g = r.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&g));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        let expect: Vec<u32> = (0..32).collect();
        assert_eq!(sorted, expect);
        assert_ne!(v, expect, "32 elements should not shuffle to identity");
    }
}
